"""Basic-block translation cache: compile hot blocks to specialized closures.

The generic interpreter (:mod:`repro.isa.interpreter`) pays a long opcode
``elif`` chain plus several ``Instr`` attribute loads for *every* executed
instruction — after the batched-event work that dispatch is the dominant
remaining host cost. COMPASS itself avoids it entirely by direct execution:
application code runs native and only the inserted instrumentation costs
anything. This module is the closest Python equivalent: each basic block is
compiled **once** into straight-line Python source (operands baked in as
literals, no ``Op`` branching, no per-instruction attribute lookups), the
source is compiled and cached, and thin trampolines chain the resulting
closures block to block.

Four variants are generated per block:

``raw``
    Plain function with raw-mode semantics (no events, no timing) — the
    Table 2 "raw execution" baseline.
``plain``
    Plain instrumented function used when the caller can prove no generator
    suspension can occur in the block (no sync/OS ops, and either the event
    batch has headroom for every memory reference or simulation is OFF).
    This is the hot case: most block executions run without suspending.
``gen_batched`` / ``gen_event``
    Generator functions with the full instrumented semantics (batch-cap
    flushes, sync/OS-call yields), entered via ``yield from`` only when a
    suspension is actually possible.

Bit-identity contract: the trampolines suspend at exactly the points the
interpreter would (a batch publish after the append that reaches
``BATCH_CAP``, a flush before every sync/OS event, one event per reference
in unbatched mode), accumulate block cost and ``pending`` cycles in the
same order, and raise the same errors with the same messages. Equivalence
is asserted by ``tests/test_translate_equivalence.py`` (engine workloads +
differential fuzzing) the same way ``tests/test_fastpath_equivalence.py``
covers the fast path.

Invalidation: translations are cached on the :class:`Program` object and
keyed by block *content* in the shared code cache. Programs are immutable
after :meth:`Program.resolve` everywhere in this codebase; callers that do
mutate a program afterwards must call :func:`invalidate` first.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core import events as ev
from ..core.errors import FrontendError
from .instructions import BLOCK_ENDERS, Instr, Op
from .program import Program


class TranslationError(Exception):
    """A program cannot be translated (exotic operand types, unknown ops).

    Callers fall back to the generic interpreter — translation is a pure
    host-side optimisation, never a functional requirement.
    """


#: translation-cache observability (read via :func:`cache_stats`)
CACHE_STATS: Dict[str, int] = {
    "programs": 0,        # programs translated
    "program_hits": 0,    # translate() calls served from the program cache
    "blocks": 0,          # basic blocks compiled (all variants)
    "code_hits": 0,       # block variants served from the shared code cache
    "code_misses": 0,     # block variants actually compiled
    "fallbacks": 0,       # programs that fell back to the interpreter
}

#: shared code cache: generated source -> compiled code object. Keyed by
#: content, so identical blocks across programs (e.g. the same kernel text
#: assembled once per worker) compile once and hit thereafter.
_CODE_CACHE: Dict[str, object] = {}


def cache_stats() -> Dict[str, int]:
    """A snapshot of the translation-cache counters."""
    return dict(CACHE_STATS)


def clear_code_cache() -> None:
    """Drop the shared code cache and zero the counters (test isolation)."""
    _CODE_CACHE.clear()
    for k in CACHE_STATS:
        CACHE_STATS[k] = 0


def invalidate(program: Program) -> None:
    """Forget a program's cached translation (call before mutating it)."""
    if hasattr(program, "_translation"):
        del program._translation


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------

def _lit(v) -> str:
    """Bake one operand into source as a literal."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return repr(v)
    raise TranslationError(f"cannot bake operand {v!r} into translated code")


_BINOPS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.AND: "&", Op.OR: "|",
    Op.XOR: "^", Op.SHL: "<<", Op.SHR: ">>",
    Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*",
}

_CMP_BRANCH = {Op.BEQ: "==", Op.BNE: "!=", Op.BLT: "<", Op.BGE: ">="}

_SYNC_KIND = {Op.LOCK: 4, Op.UNLOCK: 5, Op.BARRIER: 6}

_SYNC_OPS = frozenset({Op.LOCK, Op.UNLOCK, Op.BARRIER})


class _Writer:
    """Tiny indented-source builder."""

    __slots__ = ("lines",)

    def __init__(self) -> None:
        self.lines: List[str] = []

    def __call__(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_mem_tail(w: _Writer, ind: int, kind: int, addr: str, size: int,
                   mode: str) -> None:
    """The instrumentation tail after a memory reference: append to the
    batch (flushing at the cap in generator variants) or yield one event."""
    w(ind, "if m.sim_on:")
    if mode == "gene":
        w(ind + 1, f"yield Event({kind}, {addr}, {size})")
        return
    w(ind + 1, f"batch.append({kind}, {addr}, {size}, m.pending)")
    w(ind + 1, "m.pending = 0")
    if mode == "genb":
        w(ind + 1, f"if batch.n >= {ev.BATCH_CAP}:")
        w(ind + 2, "yield batch")
        w(ind + 2, "batch.reset()")


def _emit(ins: Instr, mode: str, fall: int, w: _Writer) -> bool:
    """Emit one instruction; returns True when it ends the block (emitted a
    terminal ``return``). ``mode`` is "raw" | "plain" | "genb" | "gene"."""
    op = ins.op
    A, B, C = ins.a, ins.b, ins.c
    raw = mode == "raw"
    ind = 1

    if op in _BINOPS:
        w(ind, f"regs[{A}] = regs[{B}] {_BINOPS[op]} regs[{C}]")
    elif op == Op.DIV:
        w(ind, f"regs[{A}] = regs[{B}] // regs[{C}] if regs[{C}] else 0")
    elif op == Op.MOD:
        w(ind, f"regs[{A}] = regs[{B}] % regs[{C}] if regs[{C}] else 0")
    elif op == Op.FDIV:
        w(ind, f"regs[{A}] = regs[{B}] / regs[{C}] if regs[{C}] else 0.0")
    elif op == Op.FMA:
        w(ind, f"regs[{A}] = regs[{A}] + regs[{B}] * regs[{C}]")
    elif op == Op.ADDI:
        w(ind, f"regs[{A}] = regs[{B}] + {_lit(C)}")
    elif op == Op.MULI:
        w(ind, f"regs[{A}] = regs[{B}] * {_lit(C)}")
    elif op == Op.ANDI:
        w(ind, f"regs[{A}] = regs[{B}] & {_lit(C)}")
    elif op == Op.LI:
        w(ind, f"regs[{A}] = {_lit(B)}")
    elif op == Op.MOV:
        w(ind, f"regs[{A}] = regs[{B}]")
    elif op == Op.CMP:
        w(ind, f"_x = regs[{B}]")
        w(ind, f"_y = regs[{C}]")
        w(ind, f"regs[{A}] = (_x > _y) - (_x < _y)")
    elif op == Op.NOP:
        pass

    # --- memory ---
    elif op in (Op.LOAD, Op.LOADX):
        sz = ins.d or 4
        addr = (f"regs[{B}] + {_lit(C)}" if op == Op.LOAD
                else f"regs[{B}] + regs[{C}]")
        if raw:
            w(ind, f"regs[{A}] = mem.load({addr}, {sz})")
        else:
            w(ind, f"_addr = {addr}")
            w(ind, f"regs[{A}] = mem.load(_addr, {sz})")
            _emit_mem_tail(w, ind, 0, "_addr", sz, mode)
    elif op in (Op.STORE, Op.STOREX):
        sz = ins.d or 4
        addr = (f"regs[{B}] + {_lit(C)}" if op == Op.STORE
                else f"regs[{B}] + regs[{C}]")
        if raw:
            w(ind, f"mem.store({addr}, regs[{A}], {sz})")
        else:
            w(ind, f"_addr = {addr}")
            w(ind, f"mem.store(_addr, regs[{A}], {sz})")
            _emit_mem_tail(w, ind, 1, "_addr", sz, mode)
    elif op == Op.LWARX:
        if raw:
            w(ind, f"m.reservation = regs[{B}]")
            w(ind, f"regs[{A}] = mem.load(regs[{B}], 4)")
        else:
            w(ind, f"_addr = regs[{B}]")
            w(ind, "m.reservation = _addr")
            w(ind, f"regs[{A}] = mem.load(_addr, 4)")
            _emit_mem_tail(w, ind, 0, "_addr", 4, mode)
    elif op == Op.STWCX:
        if raw:
            w(ind, f"if m.reservation == regs[{B}]:")
            w(ind + 1, f"mem.store(regs[{B}], regs[{A}], 4)")
            w(ind + 1, f"regs[{A}] = 1")
            w(ind, "else:")
            w(ind + 1, f"regs[{A}] = 0")
            w(ind, "m.reservation = None")
        else:
            w(ind, f"_addr = regs[{B}]")
            w(ind, "if m.reservation == _addr:")
            w(ind + 1, f"mem.store(_addr, regs[{A}], 4)")
            w(ind + 1, f"regs[{A}] = 1")
            _emit_mem_tail(w, ind + 1, 2, "_addr", 4, mode)
            w(ind, "else:")
            w(ind + 1, f"regs[{A}] = 0")
            w(ind, "m.reservation = None")

    # --- control flow ---
    elif op == Op.B:
        w(ind, f"return {_lit(A)}")
        return True
    elif op in _CMP_BRANCH:
        w(ind, f"return {_lit(C)} if regs[{A}] {_CMP_BRANCH[op]} regs[{B}] "
               f"else {fall}")
        return True
    elif op == Op.BNZ:
        w(ind, f"return {_lit(B)} if regs[{A}] != 0 else {fall}")
        return True
    elif op == Op.BZ:
        w(ind, f"return {_lit(B)} if regs[{A}] == 0 else {fall}")
        return True
    elif op == Op.BL:
        w(ind, f"stack.append({fall})")
        w(ind, f"return {_lit(A)}")
        return True
    elif op == Op.RET:
        w(ind, "if not stack:")
        w(ind + 1, "raise FrontendError(PROG_NAME + "
                   "\": RET with empty call stack\")")
        w(ind, "return stack.pop()")
        return True

    # --- sync ---
    elif op in _SYNC_OPS:
        if raw:
            pass   # single-threaded raw runs need no sync
        else:
            kind = _SYNC_KIND[op]
            arg = (f"(regs[{A}], regs[{B}])" if op == Op.BARRIER
                   else f"regs[{A}]")
            w(ind, "if m.sim_on:")
            if mode == "genb":
                w(ind + 1, "if batch.n:")
                w(ind + 2, "yield batch")
                w(ind + 2, "batch.reset()")
            w(ind + 1, f"yield Event({kind}, 0, 0, {arg})")

    # --- system ---
    elif op == Op.SYSCALL:
        if raw:
            w(ind, "regs[3] = 0")
            w(ind, "regs[4] = 0")
            w(ind, f"return {fall}")
            return True
        if mode == "genb":
            w(ind, "if batch.n:")
            w(ind + 1, "yield batch")
            w(ind + 1, "batch.reset()")
        nargs = B if isinstance(B, int) else 0
        w(ind, f"_res = yield Event(7, 0, 0, "
               f"({_lit(A)}, tuple(regs[3:3 + {_lit(nargs)}])))")
        w(ind, "if isinstance(_res, SyscallResult):")
        w(ind + 1, "regs[3] = _res.value")
        w(ind + 1, "regs[4] = _res.errno")
        w(ind, "else:")
        w(ind + 1, "regs[3] = _res if _res is not None else 0")
        w(ind + 1, "regs[4] = 0")
        w(ind, f"return {fall}")
        return True
    elif op == Op.HALT:
        w(ind, "m.halted = True")
        w(ind, "return 0")
        return True
    elif op == Op.SIMON:
        w(ind, "m.sim_on = True")
    elif op == Op.SIMOFF:
        w(ind, "m.sim_on = False")
    else:
        raise TranslationError(f"unimplemented opcode {op}")
    return False


def _block_source(effective: List[Instr], mode: str, fall: int) -> str:
    """Generate the full function source for one block variant."""
    w = _Writer()
    params = ("m, regs, mem, stack" if mode == "raw"
              else "m, regs, mem, stack, batch")
    w(0, f"def _bf({params}):")
    if effective:
        w(1, f"m.instret += {len(effective)}")
    terminal = False
    for ins in effective:
        terminal = _emit(ins, mode, fall, w)
    if not terminal:
        w(1, f"return {fall}")
    src = w.source()
    if mode in ("genb", "gene") and "yield" not in src:
        # force generator-ness: dead code, but marks the code object as a
        # generator so the trampoline's `yield from` stays type-correct
        w.lines.insert(1, "    if False:")
        w.lines.insert(2, "        yield None")
        src = w.source()
    return src


def _compile(src: str):
    code = _CODE_CACHE.get(src)
    if code is None:
        CACHE_STATS["code_misses"] += 1
        code = compile(src, "<translated-block>", "exec")
        _CODE_CACHE[src] = code
    else:
        CACHE_STATS["code_hits"] += 1
    return code


# ---------------------------------------------------------------------------
# translated programs
# ---------------------------------------------------------------------------

class TranslatedProgram:
    """The compiled form of one :class:`Program`: per-block closures plus
    the dispatch metadata the trampolines index by block number."""

    __slots__ = ("name", "entry", "nblocks", "costs", "raw_fns", "plain_fns",
                 "gen_batched", "gen_event", "nmem", "no_simon")

    def __init__(self, program: Program) -> None:
        self.name = program.name
        self.entry = program.entry
        self.nblocks = len(program.blocks)
        self.costs: List[int] = []
        self.raw_fns: List[Callable] = []
        #: None for blocks containing sync/OS ops (those always suspend)
        self.plain_fns: List[Optional[Callable]] = []
        self.gen_batched: List[Callable] = []
        self.gen_event: List[Callable] = []
        #: memory references per block (batch-headroom bound)
        self.nmem: List[int] = []
        #: True when the block cannot turn simulation ON mid-block
        self.no_simon: List[bool] = []
        ns = {
            "Event": ev.Event,
            "SyscallResult": ev.SyscallResult,
            "FrontendError": FrontendError,
            "PROG_NAME": program.name,
        }

        def make(src: str):
            exec(_compile(src), ns)
            return ns.pop("_bf")

        for bi, blk in enumerate(program.blocks):
            # instructions past the first block-ender are dead: the
            # interpreter's loop always breaks at the ender
            effective: List[Instr] = []
            for ins in blk.instrs:
                effective.append(ins)
                if ins.op in BLOCK_ENDERS:
                    break
            fall = bi + 1
            ops = [i.op for i in effective]
            suspends = any(o in _SYNC_OPS or o == Op.SYSCALL for o in ops)
            self.costs.append(blk.cost)
            self.nmem.append(sum(1 for i in effective if i.is_mem()))
            self.no_simon.append(Op.SIMON not in ops)
            self.raw_fns.append(make(_block_source(effective, "raw", fall)))
            self.plain_fns.append(
                None if suspends
                else make(_block_source(effective, "plain", fall)))
            self.gen_batched.append(
                make(_block_source(effective, "genb", fall)))
            self.gen_event.append(
                make(_block_source(effective, "gene", fall)))


def translate(program: Program) -> TranslatedProgram:
    """Translate (or fetch the cached translation of) ``program``."""
    tp = getattr(program, "_translation", None)
    if tp is not None:
        CACHE_STATS["program_hits"] += 1
        return tp
    tp = TranslatedProgram(program)
    CACHE_STATS["programs"] += 1
    CACHE_STATS["blocks"] += tp.nblocks
    program._translation = tp
    return tp


# ---------------------------------------------------------------------------
# trampolines — the three execution drivers
# ---------------------------------------------------------------------------

def _drive_batched(tp: TranslatedProgram, m):
    """Instrumented batched frontend (mirrors Interpreter.run(batched=True)).

    The fast case takes the plain closure: possible only when the block has
    no sync/OS ops and either the batch has headroom for every reference in
    the block (so the cap flush cannot trigger) or simulation is OFF and
    the block cannot switch it on.
    """
    regs = m.regs
    mem = m.mem
    stack = m.stack
    nblocks = tp.nblocks
    costs = tp.costs
    gens = tp.gen_batched
    plains = tp.plain_fns
    nmem = tp.nmem
    quiet = tp.no_simon
    cap = ev.BATCH_CAP
    batch = ev.acquire_batch()
    bi = tp.entry
    while not m.halted:
        if m.sim_on:
            m.pending += costs[bi]
        pf = plains[bi]
        if pf is not None and (batch.n + nmem[bi] < cap
                               or (quiet[bi] and not m.sim_on)):
            nb = pf(m, regs, mem, stack, batch)
        else:
            nb = yield from gens[bi](m, regs, mem, stack, batch)
        if m.halted:
            break
        if nb >= nblocks:
            m.halted = True
            break
        bi = nb
    if batch.n:
        yield batch
    ev.release_batch(batch)
    return regs[3]


def _drive_event(tp: TranslatedProgram, m):
    """Instrumented per-event frontend (mirrors Interpreter.run())."""
    regs = m.regs
    mem = m.mem
    stack = m.stack
    nblocks = tp.nblocks
    costs = tp.costs
    gens = tp.gen_event
    plains = tp.plain_fns
    nmem = tp.nmem
    quiet = tp.no_simon
    bi = tp.entry
    while not m.halted:
        if m.sim_on:
            m.pending += costs[bi]
        pf = plains[bi]
        if pf is not None and (nmem[bi] == 0
                               or (quiet[bi] and not m.sim_on)):
            nb = pf(m, regs, mem, stack, None)
        else:
            nb = yield from gens[bi](m, regs, mem, stack, None)
        if m.halted:
            break
        if nb >= nblocks:
            m.halted = True
            break
        bi = nb
    return regs[3]


def translated_run(program: Program, machine, batched: bool = False):
    """The translated instrumented frontend coroutine — a drop-in for
    :meth:`Interpreter.run` with identical yields, replies and return."""
    tp = translate(program)
    if batched:
        return _drive_batched(tp, machine)
    return _drive_event(tp, machine)


def translated_run_raw(program: Program, machine,
                       max_instrs: int = 1 << 62) -> int:
    """The translated raw loop — a drop-in for :meth:`Interpreter.run_raw`."""
    tp = translate(program)
    m = machine
    regs = m.regs
    mem = m.mem
    stack = m.stack
    fns = tp.raw_fns
    nblocks = tp.nblocks
    bi = tp.entry
    while not m.halted:
        nb = fns[bi](m, regs, mem, stack)
        if m.halted:
            break
        if m.instret > max_instrs:
            raise FrontendError(
                f"{tp.name}: exceeded {max_instrs} instructions"
            )
        if nb >= nblocks:
            m.halted = True
            break
        bi = nb
    return regs[3]
