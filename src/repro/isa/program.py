"""Programs and basic blocks.

A :class:`Program` is an ordered list of :class:`BasicBlock`; each block is a
straight-line instruction sequence ending (implicitly or explicitly) in a
control transfer. The instrumentor (:mod:`repro.instrument`) annotates each
block with its static cycle cost — the code COMPASS inserts "at the end of
each basic block" — and marks memory instructions as event sites.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.errors import InstrumentationError
from .instructions import BLOCK_ENDERS, Instr, Op
from .timing import block_cost


class BasicBlock:
    """A labeled straight-line run of instructions.

    Attributes
    ----------
    label: block name (branch target).
    instrs: the instructions.
    cost: static cycle cost, filled by :meth:`finalize` (instrumentation).
    index: position within the owning program (set by Program).
    """

    __slots__ = ("label", "instrs", "cost", "index")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None) -> None:
        self.label = label
        self.instrs: List[Instr] = instrs or []
        self.cost = 0
        self.index = -1

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def finalize(self) -> None:
        """Compute the static block cost (the instrumentor's timing insert)."""
        self.cost = block_cost(self.instrs)

    def terminator(self) -> Optional[Instr]:
        """The control-transfer instruction ending the block, if any."""
        if self.instrs and self.instrs[-1].op in BLOCK_ENDERS:
            return self.instrs[-1]
        return None

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BasicBlock({self.label!r}, {len(self.instrs)} instrs, cost={self.cost})"


class Program:
    """An executable unit: blocks, a label map, and an entry point."""

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self.blocks: List[BasicBlock] = []
        self.labels: Dict[str, int] = {}
        self.entry = 0

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Append a block, registering its label."""
        if block.label in self.labels:
            raise InstrumentationError(
                f"duplicate label {block.label!r} in {self.name}"
            )
        block.index = len(self.blocks)
        self.labels[block.label] = block.index
        self.blocks.append(block)
        return block

    def resolve(self) -> "Program":
        """Resolve symbolic branch targets to block indices and finalize
        block costs. Must be called once before execution."""
        for blk in self.blocks:
            blk.finalize()
            for ins in blk.instrs:
                if ins.label is not None:
                    target = self.labels.get(ins.label)
                    if target is None:
                        raise InstrumentationError(
                            f"undefined label {ins.label!r} in {self.name}"
                        )
                    # branch target index lives in the last operand slot used
                    # by that opcode's encoding: plain branches use .a,
                    # compare-branches use .c
                    if ins.op in (Op.B, Op.BL):
                        ins.a = target
                    elif ins.op in (Op.BNZ, Op.BZ):
                        ins.b = target
                    else:
                        ins.c = target
        return self

    def block_of(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        try:
            return self.blocks[self.labels[label]]
        except KeyError:
            raise InstrumentationError(f"no block labeled {label!r}") from None

    @property
    def n_instrs(self) -> int:
        """Total static instruction count."""
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Program({self.name!r}, {len(self.blocks)} blocks, {self.n_instrs} instrs)"
