"""Frontend-side functional data memory for ISA programs.

In COMPASS the *frontend* executes instructions natively, so data values live
in the frontend process; the backend only ever sees addresses and sizes. This
module is the equivalent for interpreted programs: a segment-mapped
functional store. Shared-memory segments attach the *same* backing store into
several processes' memories (the shmat model), so interleaved simulated
processes really observe each other's writes.

Functional values are stored address-exact (the value written at address A is
returned by a load of address A); overlapping partial-word aliasing is not
modeled, which is sufficient for the synthetic kernels and keeps the hot path
a single dict access.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import MemoryError_


class SegmentStore:
    """Backing store for one segment; shareable between address spaces."""

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: Dict[int, object] = {}


class DataMemory:
    """A per-process functional address space built from segments."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        # sorted list of (base, size, store, offset_key)
        self._segs: List[Tuple[int, int, SegmentStore]] = []

    def map_segment(self, base: int, size: int,
                    store: Optional[SegmentStore] = None) -> SegmentStore:
        """Map ``size`` bytes at ``base``; pass an existing ``store`` to share
        it (shared memory attach). Returns the backing store."""
        if size <= 0:
            raise MemoryError_(f"segment size must be positive, got {size}")
        for b, s, _ in self._segs:
            if base < b + s and b < base + size:
                raise MemoryError_(
                    f"segment [{base:#x},{base + size:#x}) overlaps "
                    f"[{b:#x},{b + s:#x})"
                )
        if store is None:
            store = SegmentStore()
        self._segs.append((base, size, store))
        self._segs.sort()
        return store

    def unmap_segment(self, base: int) -> None:
        """Remove the segment starting at ``base``."""
        for i, (b, _s, _st) in enumerate(self._segs):
            if b == base:
                del self._segs[i]
                return
        raise MemoryError_(f"no segment at {base:#x}")

    def _find(self, addr: int) -> Tuple[int, SegmentStore]:
        for b, s, st in self._segs:
            if b <= addr < b + s:
                return b, st
        raise MemoryError_(f"{self.name}: unmapped address {addr:#x}")

    def load(self, addr: int, size: int = 4) -> object:
        """Functional load; unwritten locations read as 0."""
        b, st = self._find(addr)
        return st.data.get(addr - b, 0)

    def store(self, addr: int, value: object, size: int = 4) -> None:
        """Functional store."""
        b, st = self._find(addr)
        st.data[addr - b] = value

    def segments(self) -> List[Tuple[int, int]]:
        """(base, size) of every mapped segment."""
        return [(b, s) for b, s, _ in self._segs]
