"""Interpreter: executes a :class:`~repro.isa.program.Program` either as an
event-generating frontend coroutine (instrumented mode) or natively with no
simulation hooks (raw mode, used for the Table 2 "raw execution" baseline).

The instrumented loop reproduces COMPASS's instrumentation contract exactly:

* at the end of each basic block it adds the block's static cost to the
  frontend's pending-cycles accumulator (the inserted timing code of §2);
* for each memory-reference instruction it fills an event record and yields
  it through the event port, blocking until the backend replies with the
  reference latency;
* ``SIMOFF``/``SIMON`` implement the Simulation ON/OFF switch (§5): while
  OFF, code executes functionally but produces no events and no time.

The raw loop shares semantics but elides every hook — two specialised loops
are kept deliberately (they are the two hottest paths in the system and the
raw one must not pay even a branch per instruction for instrumentation).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..core import events as ev
from ..core.errors import FrontendError
from .instructions import Instr, Op
from .memory import DataMemory
from .program import Program


class Machine:
    """Architectural state of one interpreted frontend."""

    __slots__ = ("regs", "stack", "mem", "sim_on", "pending", "halted",
                 "reservation", "instret")

    def __init__(self, mem: Optional[DataMemory] = None) -> None:
        self.regs: List[Any] = [0] * 32
        self.stack: List[int] = []          # return block indices
        self.mem = mem if mem is not None else DataMemory()
        self.sim_on = True
        #: cycles accumulated since the last event (read/zeroed by engine)
        self.pending = 0
        self.halted = False
        self.reservation: Optional[int] = None
        self.instret = 0                    # retired instruction count


class Interpreter:
    """Binds a program to a machine and provides the two execution modes."""

    def __init__(self, program: Program, machine: Optional[Machine] = None) -> None:
        self.program = program
        self.machine = machine if machine is not None else Machine()

    # ------------------------------------------------------------------
    # instrumented execution (frontend coroutine)
    # ------------------------------------------------------------------

    def run(self, batched: bool = False,
            translate: bool = False) -> Generator[ev.Event, Any, int]:
        """Execute instrumented; yields events, receives backend replies.

        With ``batched=True`` memory references are accumulated into a
        pooled :class:`~repro.core.events.EventBatch` and published as one
        port message per :data:`~repro.core.events.BATCH_CAP` references
        (flushed before every synchronisation/OS-call event so ordering
        effects are preserved). Timing is bit-identical to the per-event
        mode: each reference carries the pending cycles accumulated before
        it, so the engine reconstructs the exact issue times.

        With ``translate=True`` execution goes through the basic-block
        translation cache (:mod:`repro.isa.translate`): identical yields,
        replies, state and return value, just a faster host loop. Programs
        the translator cannot handle fall back here transparently.

        Returns the program's exit status (r3 at HALT).
        """
        if translate:
            from .translate import (CACHE_STATS, TranslationError,
                                    translated_run)
            try:
                return translated_run(self.program, self.machine,
                                      batched=batched)
            except TranslationError:
                CACHE_STATS["fallbacks"] += 1
        return self._run_interpreted(batched)

    def _run_interpreted(self,
                         batched: bool = False) -> Generator[ev.Event, Any, int]:
        """The generic dispatch loop (reference semantics for translation)."""
        m = self.machine
        regs = m.regs
        blocks = self.program.blocks
        bi = self.program.entry
        batch = ev.acquire_batch() if batched else None
        cap = ev.BATCH_CAP

        while not m.halted:
            blk = blocks[bi]
            if m.sim_on:
                m.pending += blk.cost
            next_bi = bi + 1  # fall-through default
            for ins in blk.instrs:
                op = ins.op
                m.instret += 1
                # --- memory ---
                if op == Op.LOAD:
                    addr = regs[ins.b] + ins.c
                    regs[ins.a] = m.mem.load(addr, ins.d or 4)
                    if m.sim_on:
                        if batch is not None:
                            batch.append(0, addr, ins.d or 4, m.pending)
                            m.pending = 0
                            if batch.n >= cap:
                                yield batch
                                batch.reset()
                        else:
                            yield ev.Event(ev.EvKind.READ, addr, ins.d or 4)
                elif op == Op.STORE:
                    addr = regs[ins.b] + ins.c
                    m.mem.store(addr, regs[ins.a], ins.d or 4)
                    if m.sim_on:
                        if batch is not None:
                            batch.append(1, addr, ins.d or 4, m.pending)
                            m.pending = 0
                            if batch.n >= cap:
                                yield batch
                                batch.reset()
                        else:
                            yield ev.Event(ev.EvKind.WRITE, addr, ins.d or 4)
                elif op == Op.LOADX:
                    addr = regs[ins.b] + regs[ins.c]
                    regs[ins.a] = m.mem.load(addr, ins.d or 4)
                    if m.sim_on:
                        if batch is not None:
                            batch.append(0, addr, ins.d or 4, m.pending)
                            m.pending = 0
                            if batch.n >= cap:
                                yield batch
                                batch.reset()
                        else:
                            yield ev.Event(ev.EvKind.READ, addr, ins.d or 4)
                elif op == Op.STOREX:
                    addr = regs[ins.b] + regs[ins.c]
                    m.mem.store(addr, regs[ins.a], ins.d or 4)
                    if m.sim_on:
                        if batch is not None:
                            batch.append(1, addr, ins.d or 4, m.pending)
                            m.pending = 0
                            if batch.n >= cap:
                                yield batch
                                batch.reset()
                        else:
                            yield ev.Event(ev.EvKind.WRITE, addr, ins.d or 4)
                elif op == Op.LWARX:
                    addr = regs[ins.b]
                    m.reservation = addr
                    regs[ins.a] = m.mem.load(addr, 4)
                    if m.sim_on:
                        if batch is not None:
                            batch.append(0, addr, 4, m.pending)
                            m.pending = 0
                            if batch.n >= cap:
                                yield batch
                                batch.reset()
                        else:
                            yield ev.Event(ev.EvKind.READ, addr, 4)
                elif op == Op.STWCX:
                    addr = regs[ins.b]
                    if m.reservation == addr:
                        m.mem.store(addr, regs[ins.a], 4)
                        regs[ins.a] = 1
                        if m.sim_on:
                            if batch is not None:
                                batch.append(2, addr, 4, m.pending)
                                m.pending = 0
                                if batch.n >= cap:
                                    yield batch
                                    batch.reset()
                            else:
                                yield ev.Event(ev.EvKind.RMW, addr, 4)
                    else:
                        regs[ins.a] = 0
                    m.reservation = None
                # --- integer ALU ---
                elif op == Op.ADD:
                    regs[ins.a] = regs[ins.b] + regs[ins.c]
                elif op == Op.SUB:
                    regs[ins.a] = regs[ins.b] - regs[ins.c]
                elif op == Op.MUL:
                    regs[ins.a] = regs[ins.b] * regs[ins.c]
                elif op == Op.DIV:
                    regs[ins.a] = regs[ins.b] // regs[ins.c] if regs[ins.c] else 0
                elif op == Op.MOD:
                    regs[ins.a] = regs[ins.b] % regs[ins.c] if regs[ins.c] else 0
                elif op == Op.AND:
                    regs[ins.a] = regs[ins.b] & regs[ins.c]
                elif op == Op.OR:
                    regs[ins.a] = regs[ins.b] | regs[ins.c]
                elif op == Op.XOR:
                    regs[ins.a] = regs[ins.b] ^ regs[ins.c]
                elif op == Op.SHL:
                    regs[ins.a] = regs[ins.b] << regs[ins.c]
                elif op == Op.SHR:
                    regs[ins.a] = regs[ins.b] >> regs[ins.c]
                elif op == Op.ADDI:
                    regs[ins.a] = regs[ins.b] + ins.c
                elif op == Op.MULI:
                    regs[ins.a] = regs[ins.b] * ins.c
                elif op == Op.ANDI:
                    regs[ins.a] = regs[ins.b] & ins.c
                elif op == Op.LI:
                    regs[ins.a] = ins.b
                elif op == Op.MOV:
                    regs[ins.a] = regs[ins.b]
                elif op == Op.CMP:
                    x, y = regs[ins.b], regs[ins.c]
                    regs[ins.a] = (x > y) - (x < y)
                # --- float ---
                elif op == Op.FADD:
                    regs[ins.a] = regs[ins.b] + regs[ins.c]
                elif op == Op.FSUB:
                    regs[ins.a] = regs[ins.b] - regs[ins.c]
                elif op == Op.FMUL:
                    regs[ins.a] = regs[ins.b] * regs[ins.c]
                elif op == Op.FDIV:
                    regs[ins.a] = regs[ins.b] / regs[ins.c] if regs[ins.c] else 0.0
                elif op == Op.FMA:
                    regs[ins.a] = regs[ins.a] + regs[ins.b] * regs[ins.c]
                # --- control flow ---
                elif op == Op.B:
                    next_bi = ins.a
                    break
                elif op == Op.BEQ:
                    if regs[ins.a] == regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BNE:
                    if regs[ins.a] != regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BLT:
                    if regs[ins.a] < regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BGE:
                    if regs[ins.a] >= regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BNZ:
                    if regs[ins.a] != 0:
                        next_bi = ins.b
                    break
                elif op == Op.BZ:
                    if regs[ins.a] == 0:
                        next_bi = ins.b
                    break
                elif op == Op.BL:
                    m.stack.append(bi + 1)
                    next_bi = ins.a
                    break
                elif op == Op.RET:
                    if not m.stack:
                        raise FrontendError(
                            f"{self.program.name}: RET with empty call stack"
                        )
                    next_bi = m.stack.pop()
                    break
                # --- sync ---
                elif op == Op.LOCK:
                    if m.sim_on:
                        if batch is not None and batch.n:
                            yield batch
                            batch.reset()
                        yield ev.Event(ev.EvKind.LOCK, arg=regs[ins.a])
                elif op == Op.UNLOCK:
                    if m.sim_on:
                        if batch is not None and batch.n:
                            yield batch
                            batch.reset()
                        yield ev.Event(ev.EvKind.UNLOCK, arg=regs[ins.a])
                elif op == Op.BARRIER:
                    if m.sim_on:
                        if batch is not None and batch.n:
                            yield batch
                            batch.reset()
                        yield ev.Event(ev.EvKind.BARRIER,
                                       arg=(regs[ins.a], regs[ins.b]))
                # --- system ---
                elif op == Op.SYSCALL:
                    if batch is not None and batch.n:
                        yield batch
                        batch.reset()
                    nargs = ins.b
                    args = tuple(regs[3:3 + nargs])
                    res = yield ev.Event(ev.EvKind.SYSCALL,
                                         arg=(ins.a, args))
                    if isinstance(res, ev.SyscallResult):
                        regs[3] = res.value
                        regs[4] = res.errno
                    else:  # pragma: no cover - engine always sends results
                        regs[3] = res if res is not None else 0
                        regs[4] = 0
                    next_bi = bi + 1
                    break
                elif op == Op.HALT:
                    m.halted = True
                    break
                elif op == Op.SIMON:
                    m.sim_on = True
                elif op == Op.SIMOFF:
                    m.sim_on = False
                elif op == Op.NOP:
                    pass
                else:  # pragma: no cover
                    raise FrontendError(f"unimplemented opcode {op}")
            if m.halted:
                break
            if next_bi >= len(blocks):
                m.halted = True
                break
            bi = next_bi
        if batch is not None:
            if batch.n:
                yield batch
            ev.release_batch(batch)
        return regs[3]

    # ------------------------------------------------------------------
    # raw execution (no simulation hooks) — Table 2 baseline
    # ------------------------------------------------------------------

    def run_raw(self, max_instrs: int = 1 << 62,
                translate: bool = False) -> int:
        """Execute natively: no events, no timing. Returns exit status.

        ``translate=True`` routes through the basic-block translation cache
        (same results, faster host loop; falls back here when a program
        cannot be translated).
        """
        if translate:
            from .translate import (CACHE_STATS, TranslationError,
                                    translated_run_raw)
            try:
                return translated_run_raw(self.program, self.machine,
                                          max_instrs)
            except TranslationError:
                CACHE_STATS["fallbacks"] += 1
        return self._run_raw_interpreted(max_instrs)

    def _run_raw_interpreted(self, max_instrs: int = 1 << 62) -> int:
        m = self.machine
        regs = m.regs
        mem = m.mem
        blocks = self.program.blocks
        bi = self.program.entry

        while not m.halted:
            blk = blocks[bi]
            next_bi = bi + 1
            for ins in blk.instrs:
                op = ins.op
                m.instret += 1
                if op == Op.LOAD:
                    regs[ins.a] = mem.load(regs[ins.b] + ins.c, ins.d or 4)
                elif op == Op.STORE:
                    mem.store(regs[ins.b] + ins.c, regs[ins.a], ins.d or 4)
                elif op == Op.LOADX:
                    regs[ins.a] = mem.load(regs[ins.b] + regs[ins.c], ins.d or 4)
                elif op == Op.STOREX:
                    mem.store(regs[ins.b] + regs[ins.c], regs[ins.a], ins.d or 4)
                elif op == Op.LWARX:
                    m.reservation = regs[ins.b]
                    regs[ins.a] = mem.load(regs[ins.b], 4)
                elif op == Op.STWCX:
                    if m.reservation == regs[ins.b]:
                        mem.store(regs[ins.b], regs[ins.a], 4)
                        regs[ins.a] = 1
                    else:
                        regs[ins.a] = 0
                    m.reservation = None
                elif op == Op.ADD:
                    regs[ins.a] = regs[ins.b] + regs[ins.c]
                elif op == Op.SUB:
                    regs[ins.a] = regs[ins.b] - regs[ins.c]
                elif op == Op.MUL:
                    regs[ins.a] = regs[ins.b] * regs[ins.c]
                elif op == Op.DIV:
                    regs[ins.a] = regs[ins.b] // regs[ins.c] if regs[ins.c] else 0
                elif op == Op.MOD:
                    regs[ins.a] = regs[ins.b] % regs[ins.c] if regs[ins.c] else 0
                elif op == Op.AND:
                    regs[ins.a] = regs[ins.b] & regs[ins.c]
                elif op == Op.OR:
                    regs[ins.a] = regs[ins.b] | regs[ins.c]
                elif op == Op.XOR:
                    regs[ins.a] = regs[ins.b] ^ regs[ins.c]
                elif op == Op.SHL:
                    regs[ins.a] = regs[ins.b] << regs[ins.c]
                elif op == Op.SHR:
                    regs[ins.a] = regs[ins.b] >> regs[ins.c]
                elif op == Op.ADDI:
                    regs[ins.a] = regs[ins.b] + ins.c
                elif op == Op.MULI:
                    regs[ins.a] = regs[ins.b] * ins.c
                elif op == Op.ANDI:
                    regs[ins.a] = regs[ins.b] & ins.c
                elif op == Op.LI:
                    regs[ins.a] = ins.b
                elif op == Op.MOV:
                    regs[ins.a] = regs[ins.b]
                elif op == Op.CMP:
                    x, y = regs[ins.b], regs[ins.c]
                    regs[ins.a] = (x > y) - (x < y)
                elif op == Op.FADD:
                    regs[ins.a] = regs[ins.b] + regs[ins.c]
                elif op == Op.FSUB:
                    regs[ins.a] = regs[ins.b] - regs[ins.c]
                elif op == Op.FMUL:
                    regs[ins.a] = regs[ins.b] * regs[ins.c]
                elif op == Op.FDIV:
                    regs[ins.a] = regs[ins.b] / regs[ins.c] if regs[ins.c] else 0.0
                elif op == Op.FMA:
                    regs[ins.a] = regs[ins.a] + regs[ins.b] * regs[ins.c]
                elif op == Op.B:
                    next_bi = ins.a
                    break
                elif op == Op.BEQ:
                    if regs[ins.a] == regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BNE:
                    if regs[ins.a] != regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BLT:
                    if regs[ins.a] < regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BGE:
                    if regs[ins.a] >= regs[ins.b]:
                        next_bi = ins.c
                    break
                elif op == Op.BNZ:
                    if regs[ins.a] != 0:
                        next_bi = ins.b
                    break
                elif op == Op.BZ:
                    if regs[ins.a] == 0:
                        next_bi = ins.b
                    break
                elif op == Op.BL:
                    m.stack.append(bi + 1)
                    next_bi = ins.a
                    break
                elif op == Op.RET:
                    if not m.stack:
                        raise FrontendError(
                            f"{self.program.name}: RET with empty call stack"
                        )
                    next_bi = m.stack.pop()
                    break
                elif op in (Op.LOCK, Op.UNLOCK, Op.BARRIER):
                    pass   # single-threaded raw runs need no sync
                elif op == Op.SYSCALL:
                    regs[3] = 0   # raw mode: syscalls are no-ops
                    regs[4] = 0
                    next_bi = bi + 1
                    break
                elif op == Op.HALT:
                    m.halted = True
                    break
                elif op in (Op.SIMON, Op.SIMOFF, Op.NOP):
                    pass
                else:  # pragma: no cover
                    raise FrontendError(f"unimplemented opcode {op}")
            if m.halted:
                break
            if m.instret > max_instrs:
                raise FrontendError(
                    f"{self.program.name}: exceeded {max_instrs} instructions"
                )
            if next_bi >= len(blocks):
                m.halted = True
                break
            bi = next_bi
        return regs[3]
