"""Memory-reference trace recording and analysis.

COMPASS's event stream *is* a memory trace; this module taps it. Attach a
:class:`MemTraceRecorder` to an engine and every serviced memory event is
recorded as ``(cycle, cpu, pid, kind, vaddr, size, latency, mode)``. Traces
round-trip through a compact text format and come with the two analyses
architecture studies reach for first: per-line reuse distances and working-
set footprints.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core import events as ev

#: one trace record
Rec = Tuple[int, int, int, int, int, int, int, str]

_KIND_CODE = {ev.EvKind.READ: "R", ev.EvKind.WRITE: "W", ev.EvKind.RMW: "A"}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


@dataclass
class MemTraceRecorder:
    """Engine tap collecting memory references.

    Use::

        rec = MemTraceRecorder.attach(engine, max_records=100_000)
        engine.run()
        rec.save("q1.memtrace")
    """

    max_records: int = 1_000_000
    records: List[Rec] = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.records is None:
            self.records = []

    @classmethod
    def attach(cls, engine, max_records: int = 1_000_000) -> "MemTraceRecorder":
        """Install on an engine (wraps the memory system's access path)."""
        rec = cls(max_records=max_records)
        ms = engine.memsys
        orig = ms.access

        def tapped(pid, vaddr, size, write, cpu, now, atomic=False):
            lat, fault = orig(pid, vaddr, size, write, cpu, now,
                              atomic=atomic)
            if fault is None:
                kind = (ev.EvKind.RMW if atomic
                        else ev.EvKind.WRITE if write else ev.EvKind.READ)
                rec.record(now, cpu, pid, kind, vaddr, size, lat, "u")
            return lat, fault

        ms.access = tapped
        return rec

    def record(self, cycle: int, cpu: int, pid: int, kind: int, vaddr: int,
               size: int, latency: int, mode: str) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append((cycle, cpu, pid, int(kind), vaddr, size,
                             latency, mode))

    def __len__(self) -> int:
        return len(self.records)

    # -- persistence --------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """One record per line: ``cycle cpu pid K vaddr size latency``."""
        with open(path, "w") as f:
            f.write("# compass memtrace v1\n")
            for cycle, cpu, pid, kind, vaddr, size, lat, _m in self.records:
                code = _KIND_CODE.get(kind, "R")
                f.write(f"{cycle} {cpu} {pid} {code} {vaddr:#x} {size} "
                        f"{lat}\n")
        return len(self.records)

    @staticmethod
    def load(path: Union[str, Path]) -> List[Rec]:
        out: List[Rec] = []
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 7:
                    raise ValueError(f"{path}:{lineno}: bad record")
                cycle, cpu, pid = int(parts[0]), int(parts[1]), int(parts[2])
                kind = int(_CODE_KIND[parts[3]])
                vaddr = int(parts[4], 0)
                size, lat = int(parts[5]), int(parts[6])
                out.append((cycle, cpu, pid, kind, vaddr, size, lat, "u"))
        return out


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------

def footprint(records: Iterable[Rec], line_size: int = 32) -> Dict[str, int]:
    """Distinct lines and bytes touched (the working set)."""
    lines = set()
    for _c, _cpu, _pid, _k, vaddr, size, _l, _m in records:
        first = vaddr // line_size
        last = (vaddr + max(size, 1) - 1) // line_size
        lines.update(range(first, last + 1))
    return {"lines": len(lines), "bytes": len(lines) * line_size}


def reuse_distances(records: Iterable[Rec], line_size: int = 32,
                    cap: int = 1 << 20) -> List[int]:
    """LRU stack (reuse) distance per reference; -1 = cold miss.

    The classic single-pass OrderedDict stack algorithm; ``cap`` bounds the
    stack for very long traces.
    """
    stack: "OrderedDict[int, None]" = OrderedDict()
    out: List[int] = []
    for _c, _cpu, _pid, _k, vaddr, _s, _l, _m in records:
        line = vaddr // line_size
        if line in stack:
            depth = 0
            for key in reversed(stack):
                if key == line:
                    break
                depth += 1
            out.append(depth)
            stack.move_to_end(line)
        else:
            out.append(-1)
            stack[line] = None
            if len(stack) > cap:
                stack.popitem(last=False)
    return out


def miss_ratio_curve(records: Iterable[Rec], line_size: int = 32,
                     sizes: Optional[List[int]] = None) -> Dict[int, float]:
    """Miss ratio for a range of fully-associative LRU cache sizes (in
    lines) — computed from the reuse distances."""
    dists = reuse_distances(records, line_size)
    if not dists:
        return {}
    if sizes is None:
        sizes = [16, 64, 256, 1024, 4096]
    total = len(dists)
    out = {}
    for s in sizes:
        misses = sum(1 for d in dists if d < 0 or d >= s)
        out[s] = misses / total
    return out
