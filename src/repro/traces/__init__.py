"""Request traces (paper §4.2).

SPECWeb96 cannot drive a simulated server directly — "SPECWeb96 will simply
time out and drop connections to the server, because the server under
simulation is too slow" — so COMPASS records an intermediate HTTP request
trace and replays it with a trace player. This package provides the trace
format and file round-trip; the player lives with the web-server app.
"""

from .http import HttpRequest, load_trace, save_trace
from .memtrace import (MemTraceRecorder, footprint, miss_ratio_curve,
                       reuse_distances)

__all__ = [
    "HttpRequest",
    "save_trace",
    "load_trace",
    "MemTraceRecorder",
    "footprint",
    "reuse_distances",
    "miss_ratio_curve",
]
