"""HTTP request trace records and file round-trip.

One line per request::

    <think_cycles> <path>

``think_cycles`` is the client think time before issuing the request
(relative pacing; absolute timing emerges from server responses, which is
what makes trace replay robust against a slow simulated server).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union


@dataclass(frozen=True)
class HttpRequest:
    """One GET in the trace."""

    think_cycles: int
    path: str

    def request_bytes(self) -> bytes:
        """Wire form of the request."""
        return f"GET {self.path} HTTP/1.0\r\n\r\n".encode()


def save_trace(requests: Iterable[HttpRequest],
               path: Union[str, Path]) -> int:
    """Write a trace file; returns the number of records."""
    n = 0
    with open(path, "w") as f:
        for r in requests:
            f.write(f"{r.think_cycles} {r.path}\n")
            n += 1
    return n


def load_trace(path: Union[str, Path]) -> List[HttpRequest]:
    """Read a trace file written by :func:`save_trace`."""
    out: List[HttpRequest] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: malformed trace line")
            out.append(HttpRequest(int(parts[0]), parts[1]))
    return out
