"""Kernel buffer cache.

The file-I/O syscall models (kreadv/kwritev, and the VM fault path for
mmapped files) go through this block cache: a hit copies out of a resident
kernel buffer; a miss blocks the caller on the disk. Eviction of a dirty
buffer issues a *delayed* (asynchronous) disk write, as real buffer caches
do. Only timing/residency is tracked here — functional bytes live in the
:class:`~repro.osim.filesystem.FileSystem`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from . import kmem


class BufferCache:
    """LRU cache of (inode, block) -> buffer slot."""

    def __init__(self, nbufs: int = 1024, bsize: int = 4096) -> None:
        if nbufs <= 0:
            raise ValueError("nbufs must be positive")
        self.nbufs = nbufs
        self.bsize = bsize
        #: (ino, blk) -> slot, in LRU order (first = LRU)
        self._map: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._slot_of: Dict[int, Tuple[int, int]] = {}
        self._dirty: set = set()
        self._free = list(range(nbufs - 1, -1, -1))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def lookup(self, ino: int, blk: int) -> Optional[int]:
        """Slot of a resident block (MRU-promoted), or None."""
        key = (ino, blk)
        slot = self._map.get(key)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        self._map.move_to_end(key)
        return slot

    def install(self, ino: int, blk: int) -> Tuple[int, Optional[Tuple[int, int, bool]]]:
        """Make (ino, blk) resident; returns ``(slot, evicted)`` where
        ``evicted`` is ``(ino, blk, was_dirty)`` for a displaced block."""
        key = (ino, blk)
        slot = self._map.get(key)
        if slot is not None:
            self._map.move_to_end(key)
            return slot, None
        evicted = None
        if self._free:
            slot = self._free.pop()
        else:
            old_key, slot = self._map.popitem(last=False)
            was_dirty = old_key in self._dirty
            self._dirty.discard(old_key)
            self.evictions += 1
            if was_dirty:
                self.dirty_evictions += 1
            evicted = (old_key[0], old_key[1], was_dirty)
            del self._slot_of[slot]
        self._map[key] = slot
        self._slot_of[slot] = key
        return slot, evicted

    def mark_dirty(self, ino: int, blk: int) -> None:
        if (ino, blk) in self._map:
            self._dirty.add((ino, blk))

    def is_dirty(self, ino: int, blk: int) -> bool:
        return (ino, blk) in self._dirty

    def clean(self, ino: int, blk: int) -> None:
        self._dirty.discard((ino, blk))

    def dirty_blocks_of(self, ino: int) -> list:
        """Dirty (ino, blk) pairs of one file (the msync/fsync scan)."""
        return sorted(k for k in self._dirty if k[0] == ino)

    def resident(self, ino: int, blk: int) -> bool:
        return (ino, blk) in self._map

    def data_addr(self, slot: int) -> int:
        """Kernel address of the slot's data page."""
        return kmem.buf_data_addr(slot, self.bsize)

    def hdr_addr(self, slot: int) -> int:
        """Kernel address of the slot's buffer header."""
        return kmem.buf_hdr_addr(slot)

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot; ``_map`` items carry the LRU order."""
        return {
            "map": list(self._map.items()),
            "dirty": sorted(self._dirty),
            "free": list(self._free),
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
        }

    def load_state(self, state: dict) -> None:
        self._map.clear()
        self._slot_of.clear()
        for key, slot in state["map"]:
            key = tuple(key)
            self._map[key] = slot
            self._slot_of[slot] = key
        self._dirty.clear()
        self._dirty.update(tuple(k) for k in state["dirty"])
        self._free[:] = state["free"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
        self.dirty_evictions = state["dirty_evictions"]

    @property
    def occupancy(self) -> int:
        return len(self._map)

    def hit_rate(self) -> float:
        t = self.hits + self.misses
        return self.hits / t if t else 0.0
