"""Kernel address-space layout.

Category-1 OS service code runs in the OS server but *in the kernel address
space* (one shared space — "most of the kernel code executes in a shared
memory environment", §3.1). These constants carve that space into the
structures the syscall models touch, so kernel references land on shared
lines and create the coherence traffic a real kernel creates.
"""

from __future__ import annotations

from ..mem.pagetable import KERNEL_BASE

#: kernel text + static data (rarely referenced by our models)
KTEXT = KERNEL_BASE
#: buffer-cache headers: one 64-byte header per buffer
BUFCACHE_HDR = 0xC100_0000
#: buffer-cache data pages (buffer i at BUFCACHE_DATA + i * bsize)
BUFCACHE_DATA = 0xC200_0000
#: mbuf pool (mbuf j at MBUF_POOL + j * MBUF_SIZE)
MBUF_POOL = 0xC800_0000
MBUF_SIZE = 256
#: socket / TCP control blocks (socket s at SOCKETS + s * 512)
SOCKETS = 0xCC00_0000
SOCKET_CB = 512
#: per-OS-thread kernel stacks (thread t at KSTACKS + t * KSTACK_SIZE)
KSTACKS = 0xD000_0000
KSTACK_SIZE = 0x1_0000
#: process/file tables
PROC_TABLE = 0xE000_0000
FILE_TABLE = 0xE100_0000
FILE_ENTRY = 128

# reserved kernel lock ids (applications use small non-negative ids)
KLOCK_BASE = 1_000_000
KLOCK_BUFCACHE = KLOCK_BASE + 1
KLOCK_FILETABLE = KLOCK_BASE + 2
KLOCK_SOCKTABLE = KLOCK_BASE + 3
KLOCK_VMM = KLOCK_BASE + 4
KLOCK_SOCKET = KLOCK_BASE + 100       # + socket id


def buf_hdr_addr(idx: int) -> int:
    """Kernel address of buffer header ``idx``."""
    return BUFCACHE_HDR + idx * 64


def buf_data_addr(idx: int, bsize: int) -> int:
    """Kernel address of buffer ``idx``'s data page."""
    return BUFCACHE_DATA + idx * bsize


def mbuf_addr(idx: int) -> int:
    """Kernel address of mbuf ``idx``."""
    return MBUF_POOL + (idx % 65536) * MBUF_SIZE


def socket_cb_addr(sock_id: int) -> int:
    """Kernel address of a socket control block."""
    return SOCKETS + (sock_id % 262144) * SOCKET_CB


def kstack_addr(tid: int) -> int:
    """Base of OS thread ``tid``'s kernel stack."""
    return KSTACKS + (tid % 4096) * KSTACK_SIZE


def file_entry_addr(ino: int) -> int:
    """Kernel address of the in-core inode / file-table entry."""
    return FILE_TABLE + (ino % 131072) * FILE_ENTRY
