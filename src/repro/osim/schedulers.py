"""Process scheduling onto virtual processors (category 2, paper §3.3.2).

The scheduler "keeps a mapping of processes and their associated processors";
surplus processes wait on a ready queue and get a CPU when one frees up
(blocking OS calls release processors, §3.3.3). Three policies from the
paper:

* **FCFS** (default): "a process will be assigned the first available
  processor";
* **affinity** (optimized): prefer a processor the process used before —
  ideally the one it ran on last — otherwise a processor on the same *node*
  as one it used before;
* **pre-emptive**: a timer interrupts processes at a configurable interval
  and hands their processors to waiters; composes with either policy above
  (the engine drives the interval, this module only picks CPUs).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.errors import SchedulerError
from ..core.frontend import ProcState, SimProcess


class ProcessScheduler:
    """Maps simulated processes to simulated CPUs."""

    def __init__(self, num_cpus: int, policy: str = "fcfs",
                 cpu_node: Optional[Sequence[int]] = None) -> None:
        if policy not in ("fcfs", "affinity"):
            raise SchedulerError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.num_cpus = num_cpus
        self.cpu_node = list(cpu_node) if cpu_node else [0] * num_cpus
        #: cpu -> pid (-1 when idle)
        self.on_cpu: List[int] = [-1] * num_cpus
        self.ready: Deque[SimProcess] = deque()
        self.dispatch_count = 0
        self.preemptions = 0
        self.affinity_hits = 0

    # -- queries --------------------------------------------------------------

    def free_cpus(self) -> List[int]:
        return [c for c, pid in enumerate(self.on_cpu) if pid < 0]

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot (ready queue as pids, FIFO order)."""
        return {"on_cpu": list(self.on_cpu),
                "ready": [p.pid for p in self.ready],
                "dispatch_count": self.dispatch_count,
                "preemptions": self.preemptions,
                "affinity_hits": self.affinity_hits}

    def load_state(self, state: dict,
                   procs: Optional[Dict[int, SimProcess]] = None) -> None:
        self.on_cpu[:] = state["on_cpu"]
        if procs is not None:
            self.ready = deque(procs[pid] for pid in state["ready"])
        self.dispatch_count = state["dispatch_count"]
        self.preemptions = state["preemptions"]
        self.affinity_hits = state["affinity_hits"]

    def ready_count(self) -> int:
        return len(self.ready)

    # -- policy ---------------------------------------------------------------

    def _choose_cpu(self, proc: SimProcess, free: List[int]) -> int:
        if self.policy == "fcfs" or not proc.cpu_history:
            return free[0]
        # affinity: last-used first, then any previously-used, then same-node
        last = proc.cpu_history[-1]
        if last in free:
            self.affinity_hits += 1
            return last
        used = set(proc.cpu_history)
        for c in free:
            if c in used:
                self.affinity_hits += 1
                return c
        used_nodes = {self.cpu_node[c] for c in used}
        for c in free:
            if self.cpu_node[c] in used_nodes:
                self.affinity_hits += 1
                return c
        return free[0]

    # -- transitions (engine calls these) ---------------------------------

    def admit(self, proc: SimProcess) -> Optional[Tuple[SimProcess, int]]:
        """A process became runnable. Returns a (process, cpu) dispatch when
        a processor is free, else queues it."""
        free = self.free_cpus()
        if free:
            cpu = self._choose_cpu(proc, free)
            self._bind(proc, cpu)
            return proc, cpu
        proc.state = ProcState.READY
        self.ready.append(proc)
        return None

    def release_cpu(self, proc: SimProcess) -> Optional[Tuple[SimProcess, int]]:
        """``proc`` leaves its CPU (blocked or exited). Returns the next
        dispatch for that CPU from the ready queue, if any."""
        cpu = proc.cpu
        if cpu < 0 or self.on_cpu[cpu] != proc.pid:
            raise SchedulerError(
                f"{proc.name} (pid {proc.pid}) does not hold cpu {cpu}"
            )
        self.on_cpu[cpu] = -1
        proc.cpu = -1
        if self.ready:
            nxt = self.ready.popleft()
            # honour affinity even on handoff: the freed CPU might not be the
            # best for the head waiter if another CPU is also free
            free = self.free_cpus()
            tgt = self._choose_cpu(nxt, free)
            self._bind(nxt, tgt)
            return nxt, tgt
        return None

    def preempt(self, proc: SimProcess) -> Optional[Tuple[SimProcess, int]]:
        """Timer-driven preemption of ``proc``: it goes to the tail of the
        ready queue and the head waiter takes its CPU. Returns the dispatch
        (None when nobody is waiting — the process keeps its CPU)."""
        if not self.ready:
            return None
        self.preemptions += 1
        cpu = proc.cpu
        self.on_cpu[cpu] = -1
        proc.cpu = -1
        proc.state = ProcState.READY
        nxt = self.ready.popleft()
        self.ready.append(proc)
        self._bind(nxt, cpu)
        return nxt, cpu

    def _bind(self, proc: SimProcess, cpu: int) -> None:
        if self.on_cpu[cpu] >= 0:
            raise SchedulerError(
                f"cpu {cpu} already runs pid {self.on_cpu[cpu]}"
            )
        self.on_cpu[cpu] = proc.pid
        proc.cpu = cpu
        proc.state = ProcState.RUNNING
        if not proc.cpu_history or proc.cpu_history[-1] != cpu:
            proc.cpu_history.append(cpu)
        self.dispatch_count += 1

    def remove(self, proc: SimProcess) -> None:
        """Forget a process entirely (exit while queued)."""
        try:
            self.ready.remove(proc)
        except ValueError:
            pass
