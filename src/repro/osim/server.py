"""The multi-threaded OS server (paper §3.1).

A stand-alone pool of *OS threads*; each thread pairs one-to-one with a user
process at connection time and provides its kernel services, sharing one
kernel address space with all other OS threads. Kernel service routines are
instrumented like application code: their memory references flow through the
paired process's event port (the thread "uses the same event port of the
former"), land in kernel addresses, and are charged to kernel time.

Mechanically, a category-1 syscall pushes the service generator onto the
calling process's frame stack (mode="kernel") — equivalent to the paper's
send-request/halt/resume protocol over the OS port, with the same event-port
sharing. Category-2 syscalls are plain backend functions (§3.3): immediate
functional effect + a direct cycle charge, no instrumented kernel references.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..core import events as ev
from ..core.errors import OSError_
from ..core.frontend import Proc, SimProcess, WaitToken
from ..devices.disk import DiskRequest
from ..mem.pagetable import MajorFault
from . import kmem
from .buffercache import BufferCache
from .filesystem import BLOCK_SIZE, FileSystem, Inode
from .tcpip import TcpIpStack

#: cycles of kernel entry/exit path per category-1 syscall (trap, MSR save,
#: argument copyin) — calibrated to keep small syscalls ~1-2 µs at 133 MHz
SYSCALL_ENTRY_CYCLES = 180
#: copy loop: cycles of kernel ALU work per cache line moved
COPY_WORK_PER_LINE = 2


class OSThread:
    """One thread of the OS server pool."""

    __slots__ = ("tid", "state", "proc")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.state = "single"      # "single" | "paired"
        self.proc: Optional[SimProcess] = None

    @property
    def kstack(self) -> int:
        """Base kernel address of this thread's stack."""
        return kmem.kstack_addr(self.tid)

    def __repr__(self) -> str:  # pragma: no cover
        who = self.proc.name if self.proc else "-"
        return f"OSThread(tid={self.tid}, {self.state}, proc={who})"


class FdEntry:
    """Per-process file-descriptor table entry."""

    __slots__ = ("kind", "ino", "sid", "offset", "path")

    def __init__(self, kind: str, ino: int = -1, sid: int = -1,
                 path: str = "") -> None:
        self.kind = kind          # "file" | "socket"
        self.ino = ino
        self.sid = sid
        self.offset = 0
        self.path = path


class Sys:
    """Per-call context handed to category-1 syscall handlers.

    Carries the engine, the OS server subsystems, the calling process and a
    :class:`~repro.core.frontend.Proc` for emitting kernel-mode events, plus
    the shared copy/readahead helpers.
    """

    __slots__ = ("engine", "server", "proc", "k", "thread")

    def __init__(self, server: "OSServer", proc: SimProcess) -> None:
        self.server = server
        self.engine = server.engine
        self.proc = proc
        self.k = Proc(proc)
        self.thread = proc.os_thread

    # -- conveniences ---------------------------------------------------------

    @property
    def now(self) -> int:
        return self.engine.gsched.now

    @property
    def fs(self) -> FileSystem:
        return self.server.fs

    @property
    def bufcache(self) -> BufferCache:
        return self.server.bufcache

    @property
    def net(self) -> TcpIpStack:
        return self.server.net

    @property
    def faults(self):
        """The engine's fault injector, or None when faults are disabled
        (so call sites stay a single is-None test on fault-free runs)."""
        fi = self.engine.faults
        return fi if fi.enabled else None

    def fd(self, fdno: int) -> Optional[FdEntry]:
        return self.server.fd_entry(self.proc.pid, fdno)

    def result(self, value: Any = 0, errno: int = 0,
               data: Any = None) -> ev.SyscallResult:
        return ev.SyscallResult(value, errno, data)

    def error(self, errno: int) -> ev.SyscallResult:
        return ev.SyscallResult(-1, errno)

    # -- instrumented kernel building blocks ---------------------------------

    def entry(self, extra: int = 0) -> None:
        """Charge the fixed syscall entry path + thread-stack activity."""
        self.k.compute(SYSCALL_ENTRY_CYCLES + extra)

    def copy_block(self, src: int, dst: int, nbytes: int):
        """Copy ``nbytes`` src→dst, one read+write event per cache line —
        the dominant memory behaviour of kreadv/kwritev/send."""
        if nbytes <= 0:
            return 0
        line = self.engine.cfg.backend.l1.line_size
        k = self.k
        total = 0
        off = 0
        if self.proc.batching:
            # batched pipeline: same references and per-line compute cost,
            # published as EventBatches instead of per-reference yields
            clock = self.proc.clock
            cap = ev.BATCH_CAP
            batch = ev.acquire_batch()
            while off < nbytes:
                step = min(line, nbytes - off)
                k.compute(COPY_WORK_PER_LINE)
                batch.append(0, src + off, step, clock.pending)
                clock.pending = 0
                batch.append(1, dst + off, step, 0)
                if batch.n >= cap:
                    total += yield batch
                    batch.reset()
                off += line
            if batch.n:
                total += yield batch
            ev.release_batch(batch)
            return total
        while off < nbytes:
            step = min(line, nbytes - off)
            k.compute(COPY_WORK_PER_LINE)
            total += yield ev.Event(ev.EvKind.READ, src + off, step)
            total += yield ev.Event(ev.EvKind.WRITE, dst + off, step)
            off += line
        return total

    def read_block_into_cache(self, ino: Inode, blk: int):
        """Ensure file block ``blk`` is buffer-cache resident; blocks the
        process on the disk on a miss. Returns the buffer slot."""
        bc = self.bufcache
        k = self.k
        yield from k.lock(kmem.KLOCK_BUFCACHE)
        slot = bc.lookup(ino.ino, blk)
        yield from k.load(kmem.file_entry_addr(ino.ino))
        if slot is not None:
            yield from k.load(bc.hdr_addr(slot))
            yield from k.unlock(kmem.KLOCK_BUFCACHE)
            return slot
        slot, evicted = bc.install(ino.ino, blk)
        yield from k.store(bc.hdr_addr(slot))
        # the cache lock is NOT held across the disk wait (per-buffer busy
        # bits protect the slot in a real kernel)
        yield from k.unlock(kmem.KLOCK_BUFCACHE)
        if evicted is not None and evicted[2]:
            # delayed write of the displaced dirty buffer (no blocking)
            evino, evblk, _ = evicted
            try:
                evnode = self.fs.inode(evino)
                req = DiskRequest(evnode.disk_offset(evblk), bc.bsize, True)
                self.engine.disk.submit(req, self.now)
            except OSError_:
                pass   # file deleted while dirty: drop the write
        req = DiskRequest(ino.disk_offset(blk), bc.bsize, False)
        token = WaitToken(f"diskread:{ino.ino}:{blk}")
        req.actions.append(token.wake)
        self.engine.disk.submit(req, self.now)
        k.compute(600)   # driver strategy routine + sleep
        yield token
        fi = self.faults
        if fi is not None and fi.disk_read_error():
            # transient media error reported at iodone: the driver logs it
            # and re-issues the request once; data is valid after the retry
            k.compute(1500)   # error log + strategy re-issue
            retry = DiskRequest(ino.disk_offset(blk), bc.bsize, False)
            rtok = WaitToken(f"diskretry:{ino.ino}:{blk}")
            retry.actions.append(rtok.wake)
            self.engine.disk.submit(retry, self.now)
            yield rtok
        k.compute(400)   # iodone, buffer valid
        return slot

    def write_block_through_cache(self, ino: Inode, blk: int,
                                  sync: bool = False):
        """Dirty file block ``blk`` in the cache; synchronous writes block on
        the disk. Returns the buffer slot."""
        bc = self.bufcache
        k = self.k
        yield from k.lock(kmem.KLOCK_BUFCACHE)
        slot, evicted = bc.install(ino.ino, blk)
        yield from k.store(bc.hdr_addr(slot))
        yield from k.unlock(kmem.KLOCK_BUFCACHE)
        if evicted is not None and evicted[2]:
            evino, evblk, _ = evicted
            try:
                evnode = self.fs.inode(evino)
                req = DiskRequest(evnode.disk_offset(evblk), bc.bsize, True)
                self.engine.disk.submit(req, self.now)
            except OSError_:
                pass
        if sync:
            req = DiskRequest(ino.disk_offset(blk), bc.bsize, True)
            token = WaitToken(f"diskwrite:{ino.ino}:{blk}")
            req.actions.append(token.wake)
            self.engine.disk.submit(req, self.now)
            k.compute(600)
            yield token
            bc.clean(ino.ino, blk)
        else:
            bc.mark_dirty(ino.ino, blk)
        return slot


#: handler type aliases (documentation only)
Category1Handler = Callable[..., Generator]
Category2Handler = Callable[..., Tuple[ev.SyscallResult, int]]


def syscall_handler(name: str, category: int):
    """Decorator marking a module-level syscall handler for registration."""
    def wrap(fn):
        fn._syscall = (name, category)
        return fn
    return wrap


class OSServer:
    """Thread pool + syscall registry + kernel subsystems."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.threads: List[OSThread] = []
        self._free_threads: List[OSThread] = []
        self._next_tid = 0
        self.fs = FileSystem()
        self.bufcache = BufferCache()
        self.net = TcpIpStack(engine.nic)
        #: readahead blocks issued by the file-read path
        self.readahead = 0
        #: pid -> {fd -> FdEntry}
        self._fdtables: Dict[int, Dict[int, FdEntry]] = {}
        self._registry: Dict[str, Tuple[int, Callable]] = {}
        self._register_builtin()

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Verification snapshot of kernel bookkeeping that replay rebuilds:
        thread-pool shape, per-process fd tables, readahead counter."""
        return {
            "next_tid": self._next_tid,
            "free_threads": sorted(t.tid for t in self._free_threads),
            "readahead": self.readahead,
            "fdtables": {pid: {fd: (e.kind, e.ino, e.sid, e.offset, e.path)
                               for fd, e in table.items()}
                         for pid, table in self._fdtables.items()},
            "bufcache": self.bufcache.state_dict(),
            "net": self.net.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Install the plain-data pieces (buffer cache, TCP counters,
        readahead); thread pairing and fd tables are live state verified by
        the checkpoint manager."""
        self.readahead = state["readahead"]
        self.bufcache.load_state(state["bufcache"])
        self.net.load_state(state["net"])

    # -- registry ----------------------------------------------------------

    def register(self, name: str, category: int, handler: Callable) -> None:
        """Install a syscall. New services can be added without touching the
        rest of the simulator — the extensibility §3.1 argues for."""
        if category not in (1, 2):
            raise OSError_(f"syscall {name}: category must be 1 or 2")
        self._registry[name] = (category, handler)

    def register_module(self, module) -> None:
        """Register every ``@syscall_handler`` function in ``module``."""
        for obj in vars(module).values():
            marker = getattr(obj, "_syscall", None)
            if marker is not None:
                name, cat = marker
                self.register(name, cat, obj)

    def lookup(self, name: str) -> Optional[Tuple[int, Callable]]:
        return self._registry.get(name)

    def syscall_names(self) -> List[str]:
        return sorted(self._registry)

    def _register_builtin(self) -> None:
        from .syscalls import fs as fs_calls
        from .syscalls import net as net_calls
        from .syscalls import ipc as ipc_calls
        from .syscalls import misc as misc_calls
        for mod in (fs_calls, net_calls, ipc_calls, misc_calls):
            self.register_module(mod)

    # -- pairing (OS port connection protocol) --------------------------------

    def pair(self, proc: SimProcess) -> OSThread:
        """Bind a single OS thread to a new frontend process."""
        if self._free_threads:
            th = self._free_threads.pop()
        else:
            th = OSThread(self._next_tid)
            self._next_tid += 1
            self.threads.append(th)
        th.state = "paired"
        th.proc = proc
        proc.os_thread = th
        self._fdtables.setdefault(proc.pid, {})
        return th

    def unpair(self, proc: SimProcess) -> None:
        """EXIT message: the thread becomes single again."""
        th = proc.os_thread
        if th is not None:
            th.state = "single"
            th.proc = None
            proc.os_thread = None
            self._free_threads.append(th)
        # close straggler fds
        table = self._fdtables.get(proc.pid)
        if table:
            for entry in list(table.values()):
                if entry.kind == "socket":
                    self.net.close(entry.sid)
            table.clear()

    def context_for(self, proc: SimProcess) -> Sys:
        return Sys(self, proc)

    # -- fd table ----------------------------------------------------------

    def fd_alloc(self, pid: int, entry: FdEntry) -> int:
        table = self._fdtables.setdefault(pid, {})
        if len(table) >= self.engine.cfg.os.max_fds:
            return -1
        fd = 3
        while fd in table:
            fd += 1
        table[fd] = entry
        return fd

    def fd_entry(self, pid: int, fd: int) -> Optional[FdEntry]:
        return self._fdtables.get(pid, {}).get(fd)

    def fd_close(self, pid: int, fd: int) -> Optional[FdEntry]:
        return self._fdtables.get(pid, {}).pop(fd, None)

    def open_fds(self, pid: int) -> int:
        return len(self._fdtables.get(pid, {}))

    # -- the VM trap path (major faults on mmapped files) ---------------------

    def vm_fault_handler(self, proc: SimProcess, fault: MajorFault):
        """Kernel frame servicing a file-backed page fault: read the page
        through the buffer cache (blocking on disk when absent), install the
        frame, fix the page table, return — after which the engine retries
        the faulting reference (§3.2's precise-trap property)."""
        sys = self.context_for(proc)

        def handler():
            sys.entry(420)   # trap prologue + VMM lookup
            ino = self.fs.inode(fault.vma.file_key)
            ps = self.engine.cfg.backend.memory.page_size
            blocks_per_page = max(1, ps // BLOCK_SIZE)
            first = fault.page_index * blocks_per_page
            for b in range(first, first + blocks_per_page):
                yield from sys.read_block_into_cache(ino, b)
            node = self.engine.memsys.vmm.cpu_node[max(proc.cpu, 0)]
            ppn = self.engine.memsys.vmm.install_file_page(
                fault.vma.file_key, fault.page_index, node)
            space = self.engine.memsys.vmm.space_of(proc.pid)
            space.table[fault.vpn] = ppn
            sys.k.compute(250)   # PTE insert + TLB reload
            return None

        return handler()
