"""TCP/IP stack model.

The SPECWeb profile in Table 1 is dominated by the TCP/IP stack (kwritev,
kreadv, select, connect, open, close, naccept, send) plus ethernet interrupt
handlers, so this is a first-class model: listening sockets, connection
establishment, receive queues, and transmission through the NIC. Functional
state (which bytes are where) lives here; the *timing* — mbuf walking,
checksums, copies — is charged by the syscall handlers in
:mod:`repro.osim.syscalls.net`.

Two kinds of peers:

* **remote clients** — traffic sources outside the simulated machine (the
  SPECWeb trace player): they inject frames into the NIC (RX interrupts) and
  are notified when server data finishes transmitting (TX interrupts);
* **local peers** — other simulated processes on the same machine
  connecting over loopback (database clients talking to server processes):
  data moves queue-to-queue with no NIC involvement.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core import events as ev
from ..core.errors import OSError_
from ..core.frontend import WaitToken
from ..devices.ethernet import EthernetNic, Frame

SERVER = 0
CLIENT = 1


class Connection:
    """One TCP connection; ``rx[side]`` is the data waiting for that side."""

    __slots__ = ("conn_id", "state", "rx", "fin_seen", "sids", "remote",
                 "bytes_in", "bytes_out")

    def __init__(self, conn_id: int, remote: bool) -> None:
        self.conn_id = conn_id
        self.state = "syn"                    # syn | est | closed
        self.rx: Tuple[Deque[bytes], Deque[bytes]] = (deque(), deque())
        self.fin_seen = [False, False]        # per side
        #: socket id per side (-1 = remote / not yet accepted)
        self.sids = [-1, -1]
        #: True when the client end is a trace-player traffic source
        self.remote = remote
        self.bytes_in = 0                     # client -> server
        self.bytes_out = 0                    # server -> client


class Socket:
    """A simulated socket: listener or connection endpoint."""

    __slots__ = ("sid", "state", "port", "accept_q", "conn", "side",
                 "waiters", "owner_pid", "refs")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.state = "closed"     # closed | bound | listen | connected
        self.port = -1
        self.accept_q: Deque[int] = deque()   # pending conn ids
        self.conn: Optional[Connection] = None
        self.side = SERVER
        #: tokens parked in accept/recv/select on this socket
        self.waiters: List[WaitToken] = []
        self.owner_pid = -1
        #: descriptor references (pre-fork workers inherit the listener)
        self.refs = 1

    def readable(self) -> bool:
        """select() readability: pending accepts, queued data, or EOF."""
        if self.state == "listen":
            return bool(self.accept_q)
        c = self.conn
        if c is None:
            return False
        return bool(c.rx[self.side]) or c.fin_seen[self.side] \
            or c.state == "closed"


class TcpIpStack:
    """Functional socket layer wired to one NIC plus loopback."""

    def __init__(self, nic: EthernetNic) -> None:
        self.nic = nic
        nic.on_receive = self._input
        self._sockets: Dict[int, Socket] = {}
        self._listeners: Dict[int, int] = {}       # port -> sid
        self._conns: Dict[int, Connection] = {}
        self._next_sid = 1
        self._next_conn = 1 << 20                  # local conn ids high
        #: called at TX-complete with (conn_id, nbytes, payload) — the trace
        #: player hooks this to pace its requests
        self.on_server_send: Optional[Callable[[int, int, object], None]] = None
        self.conns_established = 0
        self.conns_closed = 0
        #: fault injection (site ``tcp:drop``): set to the engine's
        #: FaultInjector only when a tcp: rule is armed; None normally
        self.faults = None
        self.retransmits = 0

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Verification snapshot: connection/socket topology as plain data
        (waiter tokens and callbacks are rebuilt by replay) plus the
        counters a restore installs."""
        return {
            "next_sid": self._next_sid,
            "next_conn": self._next_conn,
            "conns_established": self.conns_established,
            "conns_closed": self.conns_closed,
            "retransmits": self.retransmits,
            "listeners": dict(self._listeners),
            "sockets": {s.sid: (s.state, s.port, list(s.accept_q),
                                s.conn.conn_id if s.conn else None,
                                s.side, s.owner_pid, s.refs)
                        for s in self._sockets.values()},
            "conns": {c.conn_id: (c.state, [len(q) for q in c.rx],
                                  list(c.fin_seen), list(c.sids), c.remote,
                                  c.bytes_in, c.bytes_out)
                      for c in self._conns.values()},
        }

    def load_state(self, state: dict) -> None:
        """Install the counters; topology is live-rebuilt and only verified
        against the snapshot by the checkpoint manager."""
        self._next_sid = state["next_sid"]
        self._next_conn = state["next_conn"]
        self.conns_established = state["conns_established"]
        self.conns_closed = state["conns_closed"]
        self.retransmits = state["retransmits"]

    # -- socket API (called by syscall handlers) ----------------------------

    def socket(self, pid: int) -> int:
        s = Socket(self._next_sid)
        self._next_sid += 1
        s.owner_pid = pid
        self._sockets[s.sid] = s
        return s.sid

    def get(self, sid: int) -> Socket:
        s = self._sockets.get(sid)
        if s is None:
            raise OSError_(f"no socket {sid}")
        return s

    def bind(self, sid: int, port: int) -> int:
        if port in self._listeners:
            return ev.EADDRINUSE
        s = self.get(sid)
        s.port = port
        s.state = "bound"
        self._listeners[port] = sid
        return 0

    def listen(self, sid: int) -> int:
        s = self.get(sid)
        if s.state != "bound":
            return ev.EINVAL
        s.state = "listen"
        return 0

    def pop_accept(self, sid: int) -> Optional[int]:
        """Dequeue one pending connection; returns a new connected socket id
        (None when the queue is empty)."""
        s = self.get(sid)
        if not s.accept_q:
            return None
        conn_id = s.accept_q.popleft()
        conn = self._conns[conn_id]
        ns = Socket(self._next_sid)
        self._next_sid += 1
        ns.state = "connected"
        ns.conn = conn
        ns.side = SERVER
        ns.owner_pid = s.owner_pid
        conn.sids[SERVER] = ns.sid
        conn.state = "est"
        self._sockets[ns.sid] = ns
        self.conns_established += 1
        # a local peer blocked in connect() can now proceed
        if not conn.remote and conn.sids[CLIENT] >= 0:
            peer = self._sockets.get(conn.sids[CLIENT])
            if peer is not None:
                self._wake(peer)
        return ns.sid

    def connect_local(self, pid: int, port: int) -> Optional[int]:
        """Loopback connect from a simulated process: enqueues the request at
        the listener and returns the *client-side* socket id (None when
        nothing listens on ``port``)."""
        lsid = self._listeners.get(port)
        if lsid is None:
            return None
        conn = Connection(self._next_conn, remote=False)
        self._next_conn += 1
        self._conns[conn.conn_id] = conn
        cs = Socket(self._next_sid)
        self._next_sid += 1
        cs.state = "connected"
        cs.conn = conn
        cs.side = CLIENT
        cs.owner_pid = pid
        conn.sids[CLIENT] = cs.sid
        self._sockets[cs.sid] = cs
        listener = self.get(lsid)
        listener.accept_q.append(conn.conn_id)
        self._wake(listener)
        return cs.sid

    def pop_recv(self, sid: int, nbytes: int) -> Optional[bytes]:
        """Dequeue up to ``nbytes``; b"" = EOF; None = would block."""
        s = self.get(sid)
        c = s.conn
        if c is None:
            raise OSError_(f"socket {sid} not connected")
        q = c.rx[s.side]
        if not q:
            if c.fin_seen[s.side] or c.state == "closed":
                return b""
            return None
        out = bytearray()
        while q and len(out) < nbytes:
            seg = q[0]
            take = nbytes - len(out)
            if take >= len(seg):
                out += q.popleft()
            else:
                out += seg[:take]
                q[0] = seg[take:]
        return bytes(out)

    def send(self, sid: int, nbytes: int, now: int,
             payload: object = None, data: bytes = b"") -> int:
        """Transmit data on a connection.

        Remote peer: NIC transmit + client notification at TX complete.
        Local peer: enqueue on the peer's receive queue and wake it.
        """
        s = self.get(sid)
        c = s.conn
        if c is None or c.state != "est":
            raise OSError_(f"send on non-connected socket {sid}")
        if s.side == SERVER:
            c.bytes_out += nbytes
        else:
            c.bytes_in += nbytes
        if c.remote and s.side == SERVER:
            fi = self.faults
            if fi is not None and fi.check("tcp:drop") is not None:
                # segment lost on the wire: the first transmission occupies
                # the NIC but delivers nothing, the retransmission below
                # carries the data (the sender pays double wire time)
                self.nic.transmit(nbytes, now)
                self.retransmits += 1
            cb = None
            if self.on_server_send is not None:
                cid = c.conn_id
                hook = self.on_server_send
                cb = lambda: hook(cid, nbytes, payload)
            self.nic.transmit(nbytes, now, on_done=cb)
            return nbytes
        # loopback
        other = CLIENT if s.side == SERVER else SERVER
        c.rx[other].append(data if data else b"\0" * nbytes)
        osid = c.sids[other]
        if osid >= 0:
            peer = self._sockets.get(osid)
            if peer is not None:
                self._wake(peer)
        return nbytes

    def addref(self, sid: int) -> None:
        """An inherited descriptor now also references this socket."""
        self.get(sid).refs += 1

    def close(self, sid: int) -> None:
        s = self._sockets.get(sid)
        if s is None:
            return
        s.refs -= 1
        if s.refs > 0:
            return
        del self._sockets[sid]
        if s.port >= 0 and self._listeners.get(s.port) == sid:
            del self._listeners[s.port]
        c = s.conn
        if c is not None:
            other = CLIENT if s.side == SERVER else SERVER
            c.fin_seen[other] = True
            if c.state == "est":
                c.state = "closed"
                self.conns_closed += 1
            osid = c.sids[other]
            if osid >= 0:
                peer = self._sockets.get(osid)
                if peer is not None:
                    self._wake(peer)
        self._wake(s)

    # -- waiting ----------------------------------------------------------

    def add_waiter(self, sid: int, token: WaitToken) -> None:
        self.get(sid).waiters.append(token)

    def _wake(self, s: Socket) -> None:
        if s.waiters:
            ws, s.waiters = s.waiters, []
            for t in ws:
                t.wake(s.sid)

    # -- client-side injection (trace player / workload generator) ----------

    def client_connect(self, conn_id: int, port: int, now: int) -> None:
        """Inject a SYN from the remote network."""
        self.nic.deliver(Frame(64, ("syn", conn_id, port), conn_id), now)

    def client_send(self, conn_id: int, data: bytes, now: int) -> None:
        """Inject request data from the remote network."""
        self.nic.deliver(Frame(64 + len(data), ("data", conn_id, data),
                               conn_id), now)

    def client_close(self, conn_id: int, now: int) -> None:
        """Inject a FIN from the remote network."""
        self.nic.deliver(Frame(64, ("fin", conn_id), conn_id), now)

    # -- NIC input path (runs at RX interrupt delivery) -----------------------

    def _input(self, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, tuple):
            return
        kind = payload[0]
        if kind == "syn":
            _, conn_id, port = payload
            sid = self._listeners.get(port)
            if sid is None:
                return   # connection refused: silently dropped in the model
            conn = Connection(conn_id, remote=True)
            self._conns[conn_id] = conn
            s = self.get(sid)
            s.accept_q.append(conn_id)
            self._wake(s)
        elif kind == "data":
            _, conn_id, data = payload
            conn = self._conns.get(conn_id)
            if conn is None:
                return
            conn.rx[SERVER].append(data)
            conn.bytes_in += len(data)
            sid = conn.sids[SERVER]
            if sid >= 0:
                sock = self._sockets.get(sid)
                if sock is not None:
                    self._wake(sock)
        elif kind == "fin":
            conn_id = payload[1]
            conn = self._conns.get(conn_id)
            if conn is None:
                return
            conn.fin_seen[SERVER] = True
            sid = conn.sids[SERVER]
            if sid >= 0:
                sock = self._sockets.get(sid)
                if sock is not None:
                    self._wake(sock)

    # -- introspection ------------------------------------------------------

    def connection(self, conn_id: int) -> Optional[Connection]:
        return self._conns.get(conn_id)

    def socket_count(self) -> int:
        return len(self._sockets)
