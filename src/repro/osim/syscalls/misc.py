"""Miscellaneous syscalls: identity, time, sleeping, yielding.

All cheap category-2 calls except nanosleep, which needs the blocking
protocol (it parks the process on a timer task).
"""

from __future__ import annotations

from ...core import events as ev
from ...core.frontend import WaitToken
from ..server import Sys, syscall_handler


@syscall_handler("getpid", 2)
def sys_getpid(engine, proc):
    """getpid() -> simulated pid."""
    return ev.SyscallResult(proc.pid), 80


@syscall_handler("gettimeofday", 2)
def sys_gettimeofday(engine, proc):
    """gettimeofday() -> (sec, usec) of simulated time."""
    ns = engine.cfg.clock.cycles_to_ns(engine.gsched.now)
    sec = int(ns // 1_000_000_000)
    usec = int(ns % 1_000_000_000 // 1_000)
    return ev.SyscallResult(sec, data=(sec, usec)), 120

@syscall_handler("times", 2)
def sys_times(engine, proc):
    """times() -> current global cycle (the raw simulated clock)."""
    return ev.SyscallResult(engine.gsched.now), 100


@syscall_handler("sched_yield", 2)
def sys_sched_yield(engine, proc):
    """sched_yield(): give up the CPU at the next event boundary when
    someone is waiting."""
    proc.preempt_pending = True
    return ev.SyscallResult(0), 200


@syscall_handler("nanosleep", 1)
def sys_nanosleep(sys: Sys, cycles: int):
    """nanosleep(cycles): block for a simulated duration (argument already
    converted to cycles by the caller; see ClockDomain for conversions)."""
    sys.entry()
    if cycles <= 0:
        return sys.result(0)
    token = WaitToken("nanosleep")
    sys.engine.gsched.schedule_after(cycles, token.wake)
    yield token
    return sys.result(0)


@syscall_handler("getcpu", 2)
def sys_getcpu(engine, proc):
    """getcpu() -> the simulated CPU this process is running on."""
    return ev.SyscallResult(proc.cpu), 80


@syscall_handler("sigaction", 2)
def sys_sigaction(engine, proc, signo: int, handler):
    """sigaction(signo, handler): install a signal handler. COMPASS's
    source preprocessor wraps every handler in the §4.1 non-augmented
    wrapper; here the wrapper is applied at delivery time, so the handler
    runs with event generation disabled. Pass ``handler=None`` to reset."""
    if signo <= 0:
        return ev.SyscallResult(-1, ev.EINVAL), 100
    if handler is None:
        engine.signals.uninstall(proc.pid, signo)
    else:
        engine.signals.install(proc.pid, signo, handler)
    return ev.SyscallResult(0), 300


@syscall_handler("kill", 2)
def sys_kill(engine, proc, pid: int, signo: int):
    """kill(pid, signo): queue a signal for delivery at the target's next
    event boundary."""
    target = engine.comm.processes.get(pid)
    if target is None:
        return ev.SyscallResult(-1, ev.EINVAL), 200
    delivered = engine.signals.post(pid, signo)
    return ev.SyscallResult(0 if delivered else -1,
                            0 if delivered else ev.EINVAL), 400
