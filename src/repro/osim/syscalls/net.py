"""Socket syscalls (category 1) — the SPECWeb hot set.

"Out of the 47.3% kernel time, about 42% is spent in a handful of OS calls,
such as, kwritev, kreadv, select, statx, connect, open, close, naccept and
send which are predominantly due to the TCP/IP stack" (§3). Receive copies
walk mbufs into user buffers; sends copy user data into mbufs and charge
checksum work before handing frames to the NIC; accept initialises a protocol
control block; select scans descriptor sets and sleeps on socket activity.
"""

from __future__ import annotations

from ...core import events as ev
from ...core.frontend import WaitToken
from .. import kmem
from ..server import FdEntry, Sys, syscall_handler

#: checksum/processing cycles per 8 bytes of socket payload
CSUM_PER_8B = 1


@syscall_handler("socket", 1)
def sys_socket(sys: Sys, *_args):
    """socket(): allocate a socket + protocol control block."""
    sys.entry()
    sid = sys.net.socket(sys.proc.pid)
    yield from sys.k.lock(kmem.KLOCK_SOCKTABLE)
    yield from sys.k.store(kmem.socket_cb_addr(sid))
    yield from sys.k.unlock(kmem.KLOCK_SOCKTABLE)
    fd = sys.server.fd_alloc(sys.proc.pid, FdEntry("socket", sid=sid))
    if fd < 0:
        sys.net.close(sid)
        return sys.error(ev.EMFILE)
    return sys.result(fd)


@syscall_handler("bind", 1)
def sys_bind(sys: Sys, fd: int, port: int):
    """bind(fd, port)."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    yield from sys.k.store(kmem.socket_cb_addr(entry.sid))
    err = sys.net.bind(entry.sid, port)
    if err:
        return sys.error(err)
    return sys.result(0)


@syscall_handler("listen", 1)
def sys_listen(sys: Sys, fd: int, backlog: int = 128):
    """listen(fd, backlog)."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    yield from sys.k.store(kmem.socket_cb_addr(entry.sid))
    err = sys.net.listen(entry.sid)
    if err:
        return sys.error(err)
    return sys.result(0)


@syscall_handler("naccept", 1)
def sys_naccept(sys: Sys, fd: int):
    """naccept(fd): block until a connection arrives, then build the new
    socket (PCB init + file-table entry) and return its descriptor."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    from ...core.errors import OSError_
    while True:
        try:
            nsid = sys.net.pop_accept(entry.sid)
        except OSError_:
            return sys.error(ev.EBADF)   # listener vanished while we slept
        if nsid is not None:
            break
        token = WaitToken(f"accept:{entry.sid}")
        sys.net.add_waiter(entry.sid, token)
        sys.k.compute(300)     # sleep on the socket
        yield token
    # three-way-handshake completion + PCB initialisation
    sys.k.compute(1200)
    yield from sys.k.lock(kmem.KLOCK_SOCKTABLE)
    yield from sys.k.store(kmem.socket_cb_addr(nsid))
    yield from sys.k.store(kmem.socket_cb_addr(nsid) + 64)
    yield from sys.k.unlock(kmem.KLOCK_SOCKTABLE)
    nfd = sys.server.fd_alloc(sys.proc.pid, FdEntry("socket", sid=nsid))
    if nfd < 0:
        sys.net.close(nsid)
        return sys.error(ev.EMFILE)
    return sys.result(nfd)


@syscall_handler("connect", 1)
def sys_connect(sys: Sys, fd: int, port: int):
    """connect(fd, port): loopback connect to a listener on this machine
    (simulated client processes talking to server processes)."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    csid = sys.net.connect_local(sys.proc.pid, port)
    if csid is None:
        return sys.error(ev.ECONNREFUSED)
    # swap the unbound socket for the connected one
    sys.net.close(entry.sid)
    entry.sid = csid
    sys.k.compute(1500)   # handshake
    yield from sys.k.store(kmem.socket_cb_addr(csid))
    return sys.result(0)


def _sock_recv(sys: Sys, entry: FdEntry, uaddr: int, nbytes: int):
    """Receive path shared by recv() and kreadv-on-socket: block until data,
    then copy mbuf chains into the user buffer."""
    fi = sys.faults
    if fi is not None and fi.check("net:reset") is not None:
        # peer reset the connection: surfaced before any data is consumed
        sys.k.compute(300)
        return sys.error(ev.ECONNRESET)
    while True:
        data = sys.net.pop_recv(entry.sid, nbytes)
        if data is not None:
            break
        token = WaitToken(f"recv:{entry.sid}")
        sys.net.add_waiter(entry.sid, token)
        sys.k.compute(300)
        yield token
    n = len(data)
    if n:
        yield from sys.k.lock(kmem.KLOCK_SOCKET + entry.sid % 64)
        sys.k.compute(n // 8 * CSUM_PER_8B)
        yield from sys.copy_block(kmem.mbuf_addr(entry.sid * 7), uaddr, n)
        yield from sys.k.unlock(kmem.KLOCK_SOCKET + entry.sid % 64)
    return sys.result(n, data=data)


def _sock_send(sys: Sys, entry: FdEntry, uaddr: int, nbytes: int,
               data: bytes = b"", payload: object = None):
    """Send path shared by send() and kwritev-on-socket: copy user data into
    mbufs, charge checksum, hand to the stack/NIC."""
    if nbytes <= 0:
        return sys.result(0)
    fi = sys.faults
    if fi is not None and fi.check("net:reset") is not None:
        sys.k.compute(300)
        return sys.error(ev.ECONNRESET)
    yield from sys.k.lock(kmem.KLOCK_SOCKET + entry.sid % 64)
    sys.k.compute(nbytes // 8 * CSUM_PER_8B + 400)
    yield from sys.copy_block(uaddr, kmem.mbuf_addr(entry.sid * 7), nbytes)
    try:
        sys.net.send(entry.sid, nbytes, sys.now,
                     payload=payload, data=data or b"\0" * nbytes)
        res = sys.result(nbytes)
    except Exception:
        res = sys.error(ev.EPIPE)
    yield from sys.k.unlock(kmem.KLOCK_SOCKET + entry.sid % 64)
    return res


@syscall_handler("recv", 1)
def sys_recv(sys: Sys, fd: int, uaddr: int, nbytes: int):
    """recv(fd, uaddr, nbytes): returns data via ``result.data``."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    return (yield from _sock_recv(sys, entry, uaddr, nbytes))


@syscall_handler("send", 1)
def sys_send(sys: Sys, fd: int, uaddr: int, nbytes: int, data: bytes = b"",
             payload: object = None):
    """send(fd, uaddr, nbytes[, data[, payload]])."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "socket":
        return sys.error(ev.EBADF)
    return (yield from _sock_send(sys, entry, uaddr, nbytes, data, payload))


@syscall_handler("select", 1)
def sys_select(sys: Sys, fds, timeout: int = -1):
    """select(fds, timeout_cycles): block until any descriptor is readable.

    Returns the ready descriptor list in ``result.data``. ``timeout`` < 0
    blocks forever; 0 polls.
    """
    sys.entry()
    entries = []
    for fd in fds:
        e = sys.fd(fd)
        if e is None or e.kind != "socket":
            return sys.error(ev.EBADF)
        entries.append((fd, e))
    while True:
        ready = []
        for fd, e in entries:
            # descriptor-set scan cost + socket CB touch
            sys.k.compute(80)
            yield from sys.k.load(kmem.socket_cb_addr(e.sid))
            if sys.net.get(e.sid).readable():
                ready.append(fd)
        if ready:
            return sys.result(len(ready), data=ready)
        if timeout == 0:
            return sys.result(0, data=[])
        token = WaitToken("select")
        for _fd, e in entries:
            sys.net.add_waiter(e.sid, token)
        if timeout > 0:
            sys.engine.gsched.schedule_after(
                timeout, lambda t=token: t.wake("timeout"))
        sys.k.compute(400)
        res = yield token
        if res == "timeout":
            return sys.result(0, data=[])
