"""File-system syscalls (category 1).

These are the calls the paper's DB profile is made of: "kwritev, kreadv,
mmap, munmap and msync, which are related to disk I/O and the file system"
(§3). Every handler is instrumented kernel code: it walks kernel structures
(file table entries, buffer headers), moves data line-by-line between kernel
buffers and user memory, and blocks the caller on the disk where a real
kernel would.

User-buffer addresses are real simulated virtual addresses supplied by the
application, so copyin/copyout traffic hits the application's own cache
state — the key fidelity point of modeling category-1 calls in the OS
server.
"""

from __future__ import annotations

import zlib

from ...core import events as ev
from ...core.frontend import WaitToken
from ...devices.disk import DiskRequest
from .. import kmem
from ..filesystem import BLOCK_SIZE
from ..server import FdEntry, Sys, syscall_handler

#: cycles per path component for the namei lookup walk
NAMEI_PER_COMPONENT = 220

# open() flags (AIX-flavoured subset)
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0x100
O_TRUNC = 0x200
O_SYNC = 0x400


def _namei(sys: Sys, path: str):
    """Path walk: touch one directory line per component.

    Dentry slots are placed by crc32, not ``hash()``: string hashing is
    salted per interpreter, and the touched addresses must be identical
    across processes for checkpoint replay to reproduce the run.
    """
    k = sys.k
    comps = [c for c in path.split("/") if c]
    for i, _c in enumerate(comps):
        k.compute(NAMEI_PER_COMPONENT)
        slot = zlib.crc32(path[: i + 1].encode()) % 4096
        yield from k.load(kmem.FILE_TABLE + 64 * slot)
    return sys.fs.lookup(path)


@syscall_handler("open", 1)
def sys_open(sys: Sys, path: str, flags: int = O_RDONLY, *_rest):
    """open(path, flags): namei walk + file-table entry allocation."""
    sys.entry()
    node = yield from _namei(sys, path)
    if node is None:
        if not (flags & O_CREAT):
            return sys.error(ev.ENOENT)
        node = sys.fs.create(path)
    elif flags & O_TRUNC:
        sys.fs.truncate(node.ino, 0)
    yield from sys.k.lock(kmem.KLOCK_FILETABLE)
    yield from sys.k.store(kmem.file_entry_addr(node.ino))
    node.open_count += 1
    entry = FdEntry("file", ino=node.ino, path=path)
    fd = sys.server.fd_alloc(sys.proc.pid, entry)
    yield from sys.k.unlock(kmem.KLOCK_FILETABLE)
    if fd < 0:
        return sys.error(ev.EMFILE)
    return sys.result(fd)


@syscall_handler("close", 1)
def sys_close(sys: Sys, fd: int):
    """close(fd): releases the descriptor (file or socket)."""
    sys.entry()
    entry = sys.server.fd_close(sys.proc.pid, fd)
    if entry is None:
        return sys.error(ev.EBADF)
    yield from sys.k.store(kmem.file_entry_addr(max(entry.ino, 0)))
    if entry.kind == "socket":
        sys.k.compute(900)          # PCB teardown, FIN processing
        sys.net.close(entry.sid)
    else:
        node = sys.fs.lookup(entry.path)
        if node is not None and node.open_count > 0:
            node.open_count -= 1
    return sys.result(0)


@syscall_handler("statx", 1)
def sys_statx(sys: Sys, path: str, uaddr: int = 0):
    """statx(path): namei + stat-struct copyout."""
    sys.entry()
    node = yield from _namei(sys, path)
    if node is None:
        return sys.error(ev.ENOENT)
    yield from sys.k.load(kmem.file_entry_addr(node.ino))
    if uaddr:
        yield from sys.copy_block(kmem.file_entry_addr(node.ino), uaddr, 64)
    return sys.result(0, data={"size": node.size, "ino": node.ino})


@syscall_handler("lseek", 2)
def sys_lseek(engine, proc, fd: int, offset: int, whence: int = 0):
    """lseek(fd, offset, whence): descriptor bookkeeping only (category 2 —
    no kernel memory behaviour worth modeling)."""
    entry = engine.os_server.fd_entry(proc.pid, fd)
    if entry is None or entry.kind != "file":
        return ev.SyscallResult(-1, ev.EBADF), 60
    node = engine.os_server.fs.inode(entry.ino)
    if whence == 0:
        entry.offset = offset
    elif whence == 1:
        entry.offset += offset
    else:
        entry.offset = node.size + offset
    return ev.SyscallResult(entry.offset), 60


def _file_read(sys: Sys, entry: FdEntry, uaddr: int, nbytes: int):
    """Shared body of kreadv/read on a regular file, with one-block
    readahead for sequential access."""
    node = sys.fs.inode(entry.ino)
    if entry.offset >= node.size:
        return sys.result(0, data=b"")
    nbytes = min(nbytes, node.size - entry.offset)
    data = sys.fs.read(node.ino, entry.offset, nbytes)
    off = entry.offset
    end = off + nbytes
    copied = 0
    bc = sys.bufcache
    while off < end:
        blk = off // BLOCK_SIZE
        in_blk = off - blk * BLOCK_SIZE
        chunk = min(BLOCK_SIZE - in_blk, end - off)
        slot = yield from sys.read_block_into_cache(node, blk)
        # sequential readahead: start the next block's disk read early
        nxt = blk + 1
        if nxt * BLOCK_SIZE < node.size and not bc.resident(node.ino, nxt):
            ra_slot, _ = bc.install(node.ino, nxt)
            req = DiskRequest(node.disk_offset(nxt), bc.bsize, False)
            sys.engine.disk.submit(req, sys.now)
            sys.server.readahead += 1
        yield from sys.copy_block(bc.data_addr(slot) + in_blk,
                                  uaddr + copied, chunk)
        off += chunk
        copied += chunk
    entry.offset = end
    return sys.result(copied, data=data)


def _file_write(sys: Sys, entry: FdEntry, uaddr: int, nbytes: int,
                data: bytes, sync: bool):
    """Shared body of kwritev/write on a regular file (delayed writes)."""
    fi = sys.faults
    if fi is not None and fi.check("fs:enospc") is not None:
        # filesystem full: fail before any functional state changes
        sys.k.compute(300)   # block-allocation walk that comes up empty
        return sys.error(ev.ENOSPC)
    node = sys.fs.inode(entry.ino)
    if data:
        sys.fs.write(node.ino, entry.offset, data[:nbytes])
    else:
        sys.fs.write(node.ino, entry.offset, b"\0" * nbytes)
    off = entry.offset
    end = off + nbytes
    copied = 0
    bc = sys.bufcache
    while off < end:
        blk = off // BLOCK_SIZE
        in_blk = off - blk * BLOCK_SIZE
        chunk = min(BLOCK_SIZE - in_blk, end - off)
        slot = yield from sys.write_block_through_cache(node, blk, sync=sync)
        yield from sys.copy_block(uaddr + copied,
                                  bc.data_addr(slot) + in_blk, chunk)
        off += chunk
        copied += chunk
    entry.offset = end
    return sys.result(copied)


@syscall_handler("kreadv", 1)
def sys_kreadv(sys: Sys, fd: int, uaddr: int, nbytes: int):
    """kreadv(fd, uaddr, nbytes): the kernel side of read/readv.

    File descriptors go through the buffer cache (blocking on disk misses);
    socket descriptors take the TCP receive path.
    """
    sys.entry()
    entry = sys.fd(fd)
    if entry is None:
        return sys.error(ev.EBADF)
    if entry.kind == "socket":
        from . import net as net_calls
        return (yield from net_calls._sock_recv(sys, entry, uaddr, nbytes))
    res = yield from _file_read(sys, entry, uaddr, nbytes)
    return res


@syscall_handler("kwritev", 1)
def sys_kwritev(sys: Sys, fd: int, uaddr: int, nbytes: int,
                data: bytes = b""):
    """kwritev(fd, uaddr, nbytes[, data]): the kernel side of write/writev.

    ``data`` optionally carries functional bytes (the simulator's analog of
    the iovec contents living in frontend memory).
    """
    sys.entry()
    entry = sys.fd(fd)
    if entry is None:
        return sys.error(ev.EBADF)
    if entry.kind == "socket":
        from . import net as net_calls
        return (yield from net_calls._sock_send(sys, entry, uaddr, nbytes,
                                                data))
    res = yield from _file_write(sys, entry, uaddr, nbytes, data, sync=False)
    return res


@syscall_handler("read", 1)
def sys_read(sys: Sys, fd: int, uaddr: int, nbytes: int):
    """read() — alias of kreadv (applications call the libc name)."""
    return (yield from sys_kreadv(sys, fd, uaddr, nbytes))


@syscall_handler("write", 1)
def sys_write(sys: Sys, fd: int, uaddr: int, nbytes: int, data: bytes = b""):
    """write() — alias of kwritev."""
    return (yield from sys_kwritev(sys, fd, uaddr, nbytes, data))


@syscall_handler("fsync", 1)
def sys_fsync(sys: Sys, fd: int):
    """fsync(fd): write every dirty cached block of the file, blocking until
    the last one reaches the disk."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "file":
        return sys.error(ev.EBADF)
    node = sys.fs.inode(entry.ino)
    dirty = sys.bufcache.dirty_blocks_of(node.ino)
    if not dirty:
        return sys.result(0)
    token = WaitToken(f"fsync:{node.ino}")
    last = dirty[-1]
    for ino, blk in dirty:
        yield from sys.k.load(kmem.file_entry_addr(ino))
        req = DiskRequest(node.disk_offset(blk), BLOCK_SIZE, True)
        if (ino, blk) == last:
            req.actions.append(token.wake)
        sys.engine.disk.submit(req, sys.now)
        sys.bufcache.clean(ino, blk)
    sys.k.compute(500)
    yield token
    return sys.result(0)


@syscall_handler("ftruncate", 1)
def sys_ftruncate(sys: Sys, fd: int, size: int):
    """ftruncate(fd, size)."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "file":
        return sys.error(ev.EBADF)
    sys.fs.truncate(entry.ino, size)
    yield from sys.k.store(kmem.file_entry_addr(entry.ino))
    return sys.result(0)


@syscall_handler("unlink", 1)
def sys_unlink(sys: Sys, path: str):
    """unlink(path)."""
    sys.entry()
    node = yield from _namei(sys, path)
    if node is None:
        return sys.error(ev.ENOENT)
    sys.fs.unlink(path)
    yield from sys.k.store(kmem.file_entry_addr(node.ino))
    return sys.result(0)


# ---------------------------------------------------------------------------
# mapped files: mmap / munmap / msync (the TPC-D trio)
# ---------------------------------------------------------------------------

@syscall_handler("mmap", 1)
def sys_mmap(sys: Sys, fd: int, nbytes: int, shared: int = 1,
             offset: int = 0):
    """mmap(fd, len, shared, offset): map a file region; pages materialise
    through major faults on first reference (the precise-trap path, §3.2).
    Kernel work scales with the number of pages (segment setup)."""
    sys.entry()
    entry = sys.fd(fd)
    if entry is None or entry.kind != "file":
        return sys.error(ev.EBADF)
    vmm = sys.engine.memsys.vmm
    ps = vmm.page_size
    npages = (nbytes + ps - 1) // ps
    base = sys.engine.mmap_alloc(sys.proc.pid, nbytes)
    yield from sys.k.lock(kmem.KLOCK_VMM)
    sys.k.compute(60 * max(1, npages // 8) + 800)
    yield from sys.k.store(kmem.PROC_TABLE + 128 * (sys.proc.pid % 1024))
    vmm.map_file(sys.proc.pid, base, npages * ps, entry.ino,
                 offset=offset, shared=bool(shared))
    yield from sys.k.unlock(kmem.KLOCK_VMM)
    return sys.result(base)


@syscall_handler("munmap", 1)
def sys_munmap(sys: Sys, base: int):
    """munmap(base): drop the mapping (page-table teardown cost)."""
    sys.entry()
    vmm = sys.engine.memsys.vmm
    yield from sys.k.lock(kmem.KLOCK_VMM)
    try:
        vma = vmm.unmap(sys.proc.pid, base)
        npages = (vma.end - vma.start) // vmm.page_size
        sys.k.compute(40 * max(1, npages // 8) + 500)
        result = sys.result(0)
    except Exception:
        result = sys.error(ev.EINVAL)
    yield from sys.k.unlock(kmem.KLOCK_VMM)
    return result


@syscall_handler("msync", 1)
def sys_msync(sys: Sys, base: int, nbytes: int, sync: int = 1):
    """msync(base, len, sync): write mapped pages back to the file.

    Walks the range page by page; each resident page is queued to the disk
    (MS_SYNC blocks on the final write, MS_ASYNC returns immediately).
    """
    sys.entry()
    vmm = sys.engine.memsys.vmm
    space = vmm.space_of(sys.proc.pid)
    vma = space.find_vma(base)
    if vma is None or vma.kind != "file":
        return sys.error(ev.EINVAL)
    node = sys.fs.inode(vma.file_key)
    ps = vmm.page_size
    start_pg = (base - vma.start) // ps
    npages = (nbytes + ps - 1) // ps
    token = WaitToken(f"msync:{node.ino}")
    queued = 0
    last_req = None
    for i in range(start_pg, start_pg + npages):
        vpn = (vma.start + i * ps) >> (ps.bit_length() - 1)
        if vpn not in space.table:
            continue   # never touched: nothing to write
        yield from sys.k.load(kmem.file_entry_addr(node.ino))
        sys.k.compute(120)
        page_index = (vma.file_offset + i * ps) // ps
        req = DiskRequest(node.disk_base + page_index * ps, ps, True)
        queued += 1
        last_req = req
        sys.engine.disk.submit(req, sys.now)
    if queued and sync:
        # the disk queue is FIFO, so the last submitted request completes
        # last; its completion releases the caller (actions are read at
        # completion time, so attaching after submit is safe — no task can
        # run until this handler yields)
        last_req.actions.append(token.wake)
        yield token
    return sys.result(queued)
