"""IPC and process-management syscalls.

Shared memory follows §3.3.1 exactly: category 2, the stub "makes the actual
call" (here: the functional effect in the backend Vmm) and the backend keeps
the common shared-memory descriptor + page-table models. Process spawn/wait
implement the blocking protocol of §3.3.3.
"""

from __future__ import annotations

from typing import Callable

from ...core import events as ev
from ...core.frontend import WaitToken
from ..server import Sys, syscall_handler


@syscall_handler("shmget", 2)
def sys_shmget(engine, proc, key: int, size: int):
    """shmget(key, size) -> shmid: creates (or finds) the common
    shared-memory descriptor in the backend (§3.3.1)."""
    if size <= 0:
        return ev.SyscallResult(-1, ev.EINVAL), 120
    shmid = engine.memsys.vmm.shmget(key, size)
    return ev.SyscallResult(shmid), 900


@syscall_handler("shmat", 2)
def sys_shmat(engine, proc, shmid: int, addr: int = 0):
    """shmat(shmid[, addr]) -> attach address: page-table entries for the
    shared pages are created in this process's page-table model."""
    try:
        seg = engine.memsys.vmm.segment(shmid)
    except Exception:
        return ev.SyscallResult(-1, ev.EINVAL), 150
    base = addr if addr else engine.mmap_alloc(proc.pid, seg.size)
    try:
        engine.memsys.vmm.shmat(proc.pid, shmid, base)
    except Exception:
        return ev.SyscallResult(-1, ev.EINVAL), 150
    npages = seg.npages(engine.memsys.vmm.page_size)
    return ev.SyscallResult(base), 600 + 8 * npages


@syscall_handler("shmdt", 2)
def sys_shmdt(engine, proc, addr: int):
    """shmdt(addr): detach the segment mapped at ``addr``."""
    try:
        engine.memsys.vmm.shmdt(proc.pid, addr)
    except Exception:
        return ev.SyscallResult(-1, ev.EINVAL), 150
    return ev.SyscallResult(0), 500


@syscall_handler("spawn", 2)
def sys_spawn(engine, proc, name: str, factory: Callable):
    """spawn(name, factory) -> pid: create a new frontend process running
    ``factory(proc_api)`` (the simulator's fork+exec; dynamic process
    creation for pre-fork servers)."""
    child = engine.spawn(name, factory)
    return ev.SyscallResult(child.pid), 15_000


@syscall_handler("waitpid", 1)
def sys_waitpid(sys: Sys, pid: int):
    """waitpid(pid): block until the target process exits; returns its
    exit status."""
    sys.entry()
    token = WaitToken(f"waitpid:{pid}")
    sys.engine.watch_exit(pid, token)
    sys.k.compute(400)
    status = yield token
    return sys.result(status if isinstance(status, int) else 0)


@syscall_handler("pipe", 1)
def sys_pipe(sys: Sys):
    """pipe() -> (read_fd, write_fd) via ``result.data``: implemented as a
    loopback socket pair (a faithful-enough cost model for AIX pipes)."""
    from ..server import FdEntry
    sys.entry()
    net = sys.net
    # build a private listener on an ephemeral port, connect through it
    port = 60_000 + (sys.proc.pid * 7 + net.socket_count()) % 5_000
    lsid = net.socket(sys.proc.pid)
    while net.bind(lsid, port):
        port += 1
    net.listen(lsid)
    csid = net.connect_local(sys.proc.pid, port)
    ssid = net.pop_accept(lsid)
    net.close(lsid)
    sys.k.compute(1200)
    yield from sys.k.store(0xCC00_0000 + 512 * (csid % 1024))
    rfd = sys.server.fd_alloc(sys.proc.pid, FdEntry("socket", sid=ssid))
    wfd = sys.server.fd_alloc(sys.proc.pid, FdEntry("socket", sid=csid))
    if rfd < 0 or wfd < 0:
        return sys.error(ev.EMFILE)
    return sys.result(0, data=(rfd, wfd))
