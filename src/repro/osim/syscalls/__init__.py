"""Syscall models, grouped the way the paper's profile groups them:

* :mod:`repro.osim.syscalls.fs` — file I/O and mapped files (kreadv,
  kwritev, open, close, statx, mmap, munmap, msync, fsync): the TPC-C/TPC-D
  hot set;
* :mod:`repro.osim.syscalls.net` — sockets (socket, bind, listen, naccept,
  connect, select, send, recv): the SPECWeb hot set;
* :mod:`repro.osim.syscalls.ipc` — shared memory (shmget/shmat/shmdt,
  category 2 per §3.3.1), pipes, process spawn/wait;
* :mod:`repro.osim.syscalls.misc` — getpid, time, sleep, yield.

Category-1 handlers are generators that run as instrumented kernel code in
the OS server; category-2 handlers are plain functions modeled in the
backend (``(engine, proc, *args) -> (SyscallResult, cycles)``).
"""
