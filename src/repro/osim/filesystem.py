"""Simulated file system: inodes, a directory tree, extents on the disk.

Functional file contents are real bytes (the web server serves actual file
data; the database reads back the tuples it wrote). Each file gets a
contiguous extent of simulated-disk blocks at creation so the disk model sees
realistic offsets (sequential scans stay sequential).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import events as ev
from ..core.errors import OSError_

BLOCK_SIZE = 4096


class Inode:
    """One file: data bytes plus its disk extent."""

    __slots__ = ("ino", "path", "data", "disk_base", "mtime", "open_count")

    def __init__(self, ino: int, path: str, disk_base: int) -> None:
        self.ino = ino
        self.path = path
        self.data = bytearray()
        self.disk_base = disk_base
        self.mtime = 0
        self.open_count = 0

    @property
    def size(self) -> int:
        return len(self.data)

    def disk_offset(self, block_index: int) -> int:
        """Simulated-disk byte offset of file block ``block_index``."""
        return self.disk_base + block_index * BLOCK_SIZE

    def nblocks(self) -> int:
        return (len(self.data) + BLOCK_SIZE - 1) // BLOCK_SIZE


class FileSystem:
    """Flat-namespace (path-keyed) file system with extent allocation."""

    def __init__(self, extent_gap_blocks: int = 8) -> None:
        self._by_path: Dict[str, Inode] = {}
        self._by_ino: Dict[int, Inode] = {}
        self._next_ino = 2    # 1 = root
        #: next free disk byte offset for new extents
        self._disk_cursor = 0
        #: slack blocks between extents (keeps growth in-extent mostly)
        self._gap = extent_gap_blocks * BLOCK_SIZE

    # -- namespace ------------------------------------------------------------

    def create(self, path: str, data: bytes = b"",
               reserve: int = 0) -> Inode:
        """Create ``path`` (error if it exists); ``reserve`` bytes of extent
        are set aside beyond the initial data."""
        if path in self._by_path:
            raise OSError_(f"create: {path} exists")
        ino = Inode(self._next_ino, path, self._disk_cursor)
        self._next_ino += 1
        ino.data = bytearray(data)
        extent = max(len(data), reserve) + self._gap
        extent = (extent + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE
        self._disk_cursor += extent
        self._by_path[path] = ino
        self._by_ino[ino.ino] = ino
        return ino

    def lookup(self, path: str) -> Optional[Inode]:
        return self._by_path.get(path)

    def inode(self, ino: int) -> Inode:
        node = self._by_ino.get(ino)
        if node is None:
            raise OSError_(f"no inode {ino}")
        return node

    def unlink(self, path: str) -> None:
        node = self._by_path.pop(path, None)
        if node is None:
            raise OSError_(f"unlink: {path} not found")
        self._by_ino.pop(node.ino, None)

    def exists(self, path: str) -> bool:
        return path in self._by_path

    def paths(self) -> List[str]:
        return sorted(self._by_path)

    # -- data ---------------------------------------------------------------

    def read(self, ino: int, offset: int, nbytes: int) -> bytes:
        node = self.inode(ino)
        if offset >= len(node.data) or nbytes <= 0:
            return b""
        return bytes(node.data[offset:offset + nbytes])

    def write(self, ino: int, offset: int, data: bytes) -> int:
        node = self.inode(ino)
        end = offset + len(data)
        if end > len(node.data):
            node.data.extend(b"\0" * (end - len(node.data)))
        node.data[offset:end] = data
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        node = self.inode(ino)
        if size < len(node.data):
            del node.data[size:]
        else:
            node.data.extend(b"\0" * (size - len(node.data)))

    def total_bytes(self) -> int:
        return sum(len(n.data) for n in self._by_ino.values())
