"""Selective OS simulation (the heart of COMPASS, paper §3).

Category-1 OS functions — where applications spend real time — are simulated
by the multi-threaded :mod:`OS server <repro.osim.server>`, whose kernel code
is instrumented and issues kernel-space memory references through the paired
process's event port. Category-2 functions — process scheduling and virtual
memory — live in the backend (:mod:`repro.osim.schedulers`,
:mod:`repro.mem.pagetable`) and shape memory behaviour without generating
instrumented kernel references.
"""

from .schedulers import ProcessScheduler
from .interrupts import InterruptController, Interrupt
from .server import OSServer, OSThread, syscall_handler
from . import signals

__all__ = [
    "ProcessScheduler",
    "InterruptController",
    "Interrupt",
    "OSServer",
    "OSThread",
    "syscall_handler",
    "signals",
]
