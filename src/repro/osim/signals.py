"""Signal delivery with the §4.1 non-augmented wrapper.

"For signal handlers, we manage the control flag by using a non-augmented
wrapper function that is installed as a signal handler for all signal
events in DB2. Signals invoke the wrapper function that manages the control
flag before and after the function calls the signal handler that DB2
provides."

A simulated process installs Python-coroutine handlers per signal number;
delivery happens at the target's next event boundary (the same poll point
as interrupts). The wrapper clears the process's event-generation flag, so
the handler executes *functionally* but contributes no memory events and no
simulated time — exactly the paper's porting strategy for code regions
COMPASS cannot simulate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..core.frontend import Proc, SimProcess

SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGUSR1 = 30
SIGUSR2 = 31


class SignalManager:
    """Per-machine signal state: handlers + pending queues."""

    def __init__(self) -> None:
        #: pid -> {signo -> handler(proc_api, signo)}
        self._handlers: Dict[int, Dict[int, Callable]] = {}
        #: pid -> queued signal numbers
        self._pending: Dict[int, Deque[int]] = {}
        self.delivered = 0
        self.dropped = 0

    def install(self, pid: int, signo: int, handler: Callable) -> None:
        """sigaction: install ``handler`` for ``signo``."""
        self._handlers.setdefault(pid, {})[signo] = handler

    def uninstall(self, pid: int, signo: int) -> None:
        self._handlers.get(pid, {}).pop(signo, None)

    def post(self, pid: int, signo: int) -> bool:
        """kill(): queue a signal; returns False when the target has no
        handler (the signal is dropped — default actions are not modeled)."""
        if signo not in self._handlers.get(pid, {}):
            self.dropped += 1
            return False
        self._pending.setdefault(pid, deque()).append(signo)
        return True

    def pending_for(self, pid: int) -> Optional[int]:
        q = self._pending.get(pid)
        if not q:
            return None
        return q.popleft()

    def has_pending(self, pid: int) -> bool:
        return bool(self._pending.get(pid))

    def wrapper_frame(self, proc: SimProcess, signo: int):
        """Build the non-augmented wrapper: flag off → handler → flag on.

        The handler uses the normal Proc API; with the flag cleared every
        macro is a functional no-op, so no events and no time are generated
        no matter what the handler does.
        """
        handler = self._handlers.get(proc.pid, {}).get(signo)
        mgr = self

        def wrapper():
            saved = proc.events_enabled
            proc.events_enabled = False
            try:
                if handler is not None:
                    result = handler(Proc(proc), signo)
                    if result is not None and hasattr(result, "send"):
                        yield from result
                    mgr.delivered += 1
            finally:
                proc.events_enabled = saved
            return None

        return wrapper()

    def clear(self, pid: int) -> None:
        """Process exit: drop its handlers and pending signals."""
        self._handlers.pop(pid, None)
        self._pending.pop(pid, None)
