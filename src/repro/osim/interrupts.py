"""Interrupts and traps (paper §3.2).

The backend raises an interrupt by setting the "interrupt request" flag in
the target CPU's slot of the CPU-states structure; the frontend notices the
flag when it next sends a memory event and runs the handler before
proceeding (a delay of a few instructions, harmless for asynchronous
events). Handlers are bottom-half kernel code: they run in kernel address
space with interrupts disabled, consume handler cycles, touch a few kernel
cache lines (device registers, queue heads), then perform their completion
actions — typically waking a process blocked in a blocking OS call.

When the target CPU is *idle* there is no frontend to poll the flag, so the
engine services the interrupt directly at post time (the idle loop takes it
immediately); only the time/statistics effects are modeled on that path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..core import events as ev
from ..core.communicator import CpuState

#: kernel addresses of per-source device/queue structures the handler touches
_HANDLER_DATA_BASE = 0xC700_0000


class Interrupt:
    """A posted interrupt: source, cost, and completion actions."""

    __slots__ = ("source", "handler_cycles", "actions", "posted_at", "lines")

    def __init__(self, source: str, handler_cycles: int,
                 actions: Optional[List[Callable[[], None]]] = None,
                 lines: int = 4) -> None:
        self.source = source
        self.handler_cycles = handler_cycles
        self.actions = actions or []
        self.posted_at = 0
        #: number of kernel cache lines the handler touches
        self.lines = lines


class InterruptController:
    """Routes interrupts to CPUs and builds handler frames."""

    def __init__(self, cpus: Sequence[CpuState], route: str = "round_robin") -> None:
        self.cpus = cpus
        self.route = route
        self._rr = 0
        self.posted = 0
        #: source name -> distinct kernel data area (stable per source)
        self._areas: dict = {}
        #: engine hook called after posting: services the interrupt
        #: immediately when the target CPU has no event-producing frontend
        #: (idle, or its process is spinning/blocked) — the idle loop takes
        #: interrupts without waiting for a memory event
        self.post_hook: Optional[Callable[[int], None]] = None

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Routing cursor + counters + source->area map (pending interrupt
        queues are rebuilt by replay and verified via CpuState)."""
        return {"rr": self._rr, "posted": self.posted,
                "areas": dict(self._areas)}

    def load_state(self, state: dict) -> None:
        self._rr = state["rr"]
        self.posted = state["posted"]
        self._areas.clear()
        self._areas.update(state["areas"])

    # -- posting -------------------------------------------------------------

    def post(self, intr: Interrupt, now: int, cpu: int = -1) -> int:
        """Set the interrupt-request flag on a CPU (chosen by routing policy
        when ``cpu`` is -1). Returns the CPU chosen."""
        if cpu < 0:
            if self.route == "cpu0":
                cpu = 0
            else:
                cpu = self._rr
                self._rr = (self._rr + 1) % len(self.cpus)
        intr.posted_at = now
        self.cpus[cpu].irq_pending.append(intr)
        self.posted += 1
        if self.post_hook is not None:
            self.post_hook(cpu)
        return cpu

    def pending_for(self, cpu: int) -> List[Interrupt]:
        """Drain the pending queue of ``cpu`` (delivery)."""
        q = self.cpus[cpu].irq_pending
        if not q:
            return []
        out = list(q)
        q.clear()
        return out

    # -- handler construction ---------------------------------------------

    def _area_of(self, source: str) -> int:
        a = self._areas.get(source)
        if a is None:
            a = _HANDLER_DATA_BASE + len(self._areas) * 0x1_0000
            self._areas[source] = a
        return a

    def handler_frame(self, intr: Interrupt, clock) -> ev.Event:
        """Build the handler coroutine for delivery on a *busy* CPU: it is
        pushed onto the interrupted process's frame stack and emits
        kernel-space references, polluting the caches exactly the way a real
        handler would. ``clock`` is the process's FrontendClock."""
        base = self._area_of(intr.source)

        def handler():
            # device register reads + queue manipulation
            per_line = max(1, intr.handler_cycles // max(1, intr.lines))
            for i in range(intr.lines):
                clock.pending += per_line
                yield ev.Event(ev.EvKind.READ if i % 2 == 0 else ev.EvKind.WRITE,
                               base + 32 * i, 4)
            for act in intr.actions:
                act()
            return None

        return handler()

    def direct_service(self, intr: Interrupt) -> int:
        """Idle-CPU delivery: run completion actions immediately; the caller
        charges ``handler_cycles`` to that CPU's interrupt time."""
        for act in intr.actions:
            act()
        return intr.handler_cycles
