"""Real-time clock / interval timer.

Posts a periodic timer interrupt to every CPU (the PowerPC decrementer /
AIX 100 Hz tick). The tick handler is a large share of the "interrupt
handlers" row for TPC-C/TPC-D in Table 1, and it drives pre-emptive
scheduling when enabled.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.scheduler import GlobalScheduler
from .. import osim


class IntervalTimer:
    """Periodic per-CPU timer interrupts."""

    def __init__(self, gsched: GlobalScheduler,
                 intctl: "osim.interrupts.InterruptController",
                 interval: int, handler_cycles: int,
                 num_cpus: int) -> None:
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        self.gsched = gsched
        self.intctl = intctl
        self.interval = interval
        self.handler_cycles = handler_cycles
        self.num_cpus = num_cpus
        self.ticks = 0
        self._running = False
        #: callbacks invoked on each tick with (cpu, now) — the engine hooks
        #: pre-emption here
        self.on_tick: List[Callable[[int, int], None]] = []

    def start(self) -> None:
        """Arm the first tick."""
        if not self._running:
            self._running = True
            self.gsched.schedule_after(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Counters only — the pending tick closure is rebuilt by replay."""
        return {"ticks": self.ticks, "running": self._running}

    def load_state(self, state: dict) -> None:
        self.ticks = state["ticks"]
        self._running = state["running"]

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.gsched.now
        self.ticks += 1
        for cpu in range(self.num_cpus):
            intr = osim.interrupts.Interrupt(
                "timer", self.handler_cycles, lines=2)
            for cb in self.on_tick:
                # bind loop variables; actions run at delivery time
                intr.actions.append(lambda c=cpu, t=now, f=cb: f(c, t))
            self.intctl.post(intr, now, cpu=cpu)
        self.gsched.schedule_after(self.interval, self._tick)
