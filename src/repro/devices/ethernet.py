"""Ethernet NIC model.

Frames arrive from the (trace-driven) client side into the RX queue; each
delivery raises a receive interrupt whose handler runs the TCP/IP input path.
Transmissions occupy the wire at the configured bandwidth and raise a TX
completion interrupt per frame batch. The heavy per-frame handler cost is
what pushes the web-server profile to the paper's ~38 % interrupt time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..core.clock import ClockDomain
from ..core.config import EthernetConfig
from ..core.errors import DeviceError
from ..core.scheduler import GlobalScheduler
from .. import osim


class Frame:
    """One Ethernet frame carrying opaque payload for the TCP/IP model."""

    __slots__ = ("nbytes", "payload", "conn_id")

    def __init__(self, nbytes: int, payload: object = None,
                 conn_id: int = -1) -> None:
        if nbytes <= 0:
            raise DeviceError(f"bad frame size {nbytes}")
        self.nbytes = nbytes
        self.payload = payload
        self.conn_id = conn_id


class EthernetNic:
    """Half-duplex-wire NIC with per-frame interrupts."""

    def __init__(self, name: str, gsched: GlobalScheduler,
                 intctl: "osim.interrupts.InterruptController",
                 cfg: EthernetConfig, clock: ClockDomain) -> None:
        cfg.validate()
        self.name = name
        self.gsched = gsched
        self.intctl = intctl
        self.cfg = cfg
        self.clock = clock
        self._wire_busy_until = 0
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        #: called with each received Frame at interrupt time (TCP/IP input)
        self.on_receive: Optional[Callable[[Frame], None]] = None

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        return {"wire_busy_until": self._wire_busy_until,
                "rx_frames": self.rx_frames, "tx_frames": self.tx_frames,
                "rx_bytes": self.rx_bytes, "tx_bytes": self.tx_bytes}

    def load_state(self, state: dict) -> None:
        self._wire_busy_until = state["wire_busy_until"]
        self.rx_frames = state["rx_frames"]
        self.tx_frames = state["tx_frames"]
        self.rx_bytes = state["rx_bytes"]
        self.tx_bytes = state["tx_bytes"]

    def _wire_cycles(self, nbytes: int) -> int:
        c = self.clock
        return (c.us_to_cycles(self.cfg.frame_us)
                + c.bytes_at_rate(nbytes, self.cfg.bandwidth_mb_s * 1e6))

    # -- receive path (client -> server) ----------------------------------

    def deliver(self, frame: Frame, now: int) -> int:
        """Inject a frame from the network at cycle ``now``; schedules wire
        transfer + RX interrupt. Returns the delivery cycle."""
        start = max(now, self._wire_busy_until)
        done = start + self._wire_cycles(frame.nbytes)
        self._wire_busy_until = done
        self.rx_frames += 1
        self.rx_bytes += frame.nbytes

        def arrive() -> None:
            actions: List[Callable[[], None]] = []
            if self.on_receive is not None:
                actions.append(lambda f=frame: self.on_receive(f))
            # handler cost grows with payload: input checksum + mbuf copies
            cost = self.cfg.intr_handler_cycles + frame.nbytes // 4
            intr = osim.interrupts.Interrupt(
                f"eth:{self.name}:rx", cost, actions=actions, lines=6)
            self.intctl.post(intr, self.gsched.now)

        self.gsched.schedule_at(done, arrive)
        return done

    # -- transmit path (server -> client) ------------------------------------

    def transmit(self, nbytes: int, now: int,
                 on_done: Optional[Callable[[], None]] = None) -> int:
        """Send ``nbytes`` as MTU-sized frames; one TX-complete interrupt at
        the end. Returns the cycle the last frame leaves the wire."""
        if nbytes <= 0:
            raise DeviceError(f"bad transmit size {nbytes}")
        mtu = self.cfg.mtu
        nframes = (nbytes + mtu - 1) // mtu
        t = max(now, self._wire_busy_until)
        rem = nbytes
        for _ in range(nframes):
            sz = min(mtu, rem)
            t += self._wire_cycles(sz)
            rem -= sz
        self._wire_busy_until = t
        self.tx_frames += nframes
        self.tx_bytes += nbytes

        def complete() -> None:
            actions = [on_done] if on_done is not None else []
            intr = osim.interrupts.Interrupt(
                f"eth:{self.name}:tx", self.cfg.intr_handler_cycles,
                actions=actions, lines=3)
            self.intctl.post(intr, self.gsched.now)

        self.gsched.schedule_at(t, complete)
        return t
