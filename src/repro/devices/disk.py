"""Hard disk drive model.

A single-spindle disk with a FIFO request queue: each request pays controller
overhead + average seek + half-rotation rotational delay + transfer time at
the media rate. Completion raises a disk interrupt whose handler performs the
request's completion actions (waking the process blocked in kreadv/kwritev,
§3.3.3). Sequential requests to nearby blocks get a reduced seek (a simple
locality model so DSS table scans behave differently from OLTP random I/O).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.clock import ClockDomain
from ..core.config import DiskConfig
from ..core.errors import DeviceError
from ..core.scheduler import GlobalScheduler
from .. import osim


class DiskRequest:
    """One I/O: byte offset, length, direction and completion callbacks."""

    __slots__ = ("offset", "nbytes", "write", "actions", "submitted_at",
                 "completed_at")

    def __init__(self, offset: int, nbytes: int, write: bool) -> None:
        if nbytes <= 0:
            raise DeviceError(f"bad I/O size {nbytes}")
        self.offset = offset
        self.nbytes = nbytes
        self.write = write
        self.actions: List[Callable[[], None]] = []
        self.submitted_at = 0
        self.completed_at = 0


class Disk:
    """FIFO hard disk with seek locality."""

    def __init__(self, name: str, gsched: GlobalScheduler,
                 intctl: "osim.interrupts.InterruptController",
                 cfg: DiskConfig, clock: ClockDomain) -> None:
        cfg.validate()
        self.name = name
        self.gsched = gsched
        self.intctl = intctl
        self.cfg = cfg
        self.clock = clock
        self._busy_until = 0
        self._head_pos = 0
        self.requests = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.busy_cycles = 0
        self.queue_cycles = 0
        #: fault injection: callable(req) -> extra service cycles (a latency
        #: spike for this request); None outside fault-plan runs
        self.fault_hook: Optional[Callable[[DiskRequest], int]] = None
        self.fault_delay_cycles = 0

    # -- timing ---------------------------------------------------------------

    def service_cycles(self, req: DiskRequest) -> int:
        """Raw service time for one request (no queueing)."""
        c = self.clock
        seek_ms = self.cfg.avg_seek_ms
        # locality: sequential-ish access within 2 MB of the head pays 1/8 seek
        if abs(req.offset - self._head_pos) < (2 << 20):
            seek_ms /= 8.0
        rot_ms = 0.5 * 60_000.0 / self.cfg.rpm
        xfer_ms = req.nbytes / (self.cfg.transfer_mb_s * 1e6) * 1e3
        ctl_ms = self.cfg.controller_us / 1e3
        return c.ms_to_cycles(seek_ms + rot_ms + xfer_ms + ctl_ms)

    # -- submission ---------------------------------------------------------

    def submit(self, req: DiskRequest, now: int) -> int:
        """Queue a request at cycle ``now``; schedules the completion
        interrupt and returns the completion cycle."""
        self.requests += 1
        if req.write:
            self.write_bytes += req.nbytes
        else:
            self.read_bytes += req.nbytes
        req.submitted_at = now
        start = max(now, self._busy_until)
        self.queue_cycles += start - now
        service = self.service_cycles(req)
        if self.fault_hook is not None:
            extra = self.fault_hook(req)
            if extra:
                service += extra
                self.fault_delay_cycles += extra
        self.busy_cycles += service
        done = start + service
        self._busy_until = done
        self._head_pos = req.offset + req.nbytes
        req.completed_at = done

        def complete() -> None:
            intr = osim.interrupts.Interrupt(
                f"disk:{self.name}", self.cfg.intr_handler_cycles,
                actions=list(req.actions), lines=4)
            self.intctl.post(intr, self.gsched.now)

        self.gsched.schedule_at(done, complete)
        return done

    @property
    def queue_depth_hint(self) -> int:
        """Cycles of work already queued (0 when idle)."""
        return max(0, self._busy_until - self.gsched.now)

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        return {"busy_until": self._busy_until, "head_pos": self._head_pos,
                "requests": self.requests,
                "read_bytes": self.read_bytes, "write_bytes": self.write_bytes,
                "busy_cycles": self.busy_cycles,
                "queue_cycles": self.queue_cycles,
                "fault_delay_cycles": self.fault_delay_cycles}

    def load_state(self, state: dict) -> None:
        self._busy_until = state["busy_until"]
        self._head_pos = state["head_pos"]
        self.requests = state["requests"]
        self.read_bytes = state["read_bytes"]
        self.write_bytes = state["write_bytes"]
        self.busy_cycles = state["busy_cycles"]
        self.queue_cycles = state["queue_cycles"]
        self.fault_delay_cycles = state["fault_delay_cycles"]
