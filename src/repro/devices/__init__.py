"""Physical device models (paper §3.4): the real-time clock, hard disk
drives and the Ethernet NIC. Devices complete work through the global event
scheduler and raise interrupts through the interrupt controller."""

from .clock import IntervalTimer
from .disk import Disk, DiskRequest
from .ethernet import EthernetNic, Frame

__all__ = ["IntervalTimer", "Disk", "DiskRequest", "EthernetNic", "Frame"]
