"""COMPASS — COMmercial PArallel Shared memory Simulator (reproduction).

An execution-driven simulator for commercial applications (OLTP, decision
support, web serving) on shared-memory multiprocessors, reproducing Nanda et
al., IPPS 1998. See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quickstart::

    from repro import Engine, simple_backend

    eng = Engine(simple_backend(num_cpus=2))

    def app(proc):
        proc.compute(100)
        yield from proc.store(0x10_000)
        yield from proc.load(0x10_000)
        res = yield from proc.call("getpid")
        yield from proc.exit(0)

    eng.spawn("p0", app)
    eng.spawn("p1", app)
    stats = eng.run()
    print(stats.snapshot())
"""

from .core.clock import ClockDomain, DEFAULT_CLOCK
from .core.config import (BackendConfig, CacheConfig, DiskConfig,
                          EthernetConfig, MemoryConfig, OSConfig,
                          SamplingConfig, SimConfig, complex_backend,
                          simple_backend, with_os)
from .checkpoint import (CheckpointManager, checkpoint_exists,
                         load_checkpoint, resume)
from .core.engine import Engine
from .core.errors import (CheckpointCorruptError, CheckpointError,
                          CompassError, ConfigError, DeadlockError,
                          FrontendError, MemoryError_, ReplayDivergence,
                          SchedulerError, SimulatedCrash, SpoolCorruptError)
from .core.events import EvKind, Event, SyscallResult
from .core.frontend import Proc, ProcState, SimProcess, WaitToken
from .core.stats import StatsRegistry
from .faults import CrashPointPlan, CrashRule, FaultPlan, FaultRule

#: control-plane symbols resolved lazily (the service package pulls in the
#: app workloads; plain `import repro` must stay light)
_SERVICE_EXPORTS = {
    "SimulatorAdapter", "make_config_factory", "JobSpec", "JobRecord",
    "JobState", "JobQueue", "JobRunner", "run_matrix", "WORKLOADS",
}


def __getattr__(name):
    if name in _SERVICE_EXPORTS:
        from . import service
        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.0.0"

__all__ = [
    "Engine",
    "Proc",
    "ProcState",
    "SimProcess",
    "WaitToken",
    "Event",
    "EvKind",
    "SyscallResult",
    "StatsRegistry",
    "ClockDomain",
    "DEFAULT_CLOCK",
    "SimConfig",
    "SamplingConfig",
    "BackendConfig",
    "CacheConfig",
    "MemoryConfig",
    "OSConfig",
    "DiskConfig",
    "EthernetConfig",
    "FaultPlan",
    "FaultRule",
    "CrashPointPlan",
    "CrashRule",
    "simple_backend",
    "complex_backend",
    "with_os",
    "CheckpointManager",
    "checkpoint_exists",
    "load_checkpoint",
    "resume",
    "CompassError",
    "ConfigError",
    "CheckpointError",
    "CheckpointCorruptError",
    "SpoolCorruptError",
    "DeadlockError",
    "FrontendError",
    "MemoryError_",
    "ReplayDivergence",
    "SchedulerError",
    "SimulatedCrash",
    "SimulatorAdapter",
    "make_config_factory",
    "JobSpec",
    "JobRecord",
    "JobState",
    "JobQueue",
    "JobRunner",
    "run_matrix",
    "WORKLOADS",
    "__version__",
]
