"""Frontends as real host processes (the Table 3 experiment).

Protocol
--------
A worker process interprets its ISA program and streams events to the
backend over a pipe:

* memory/advance events are **fire-and-forget** — the interpreter's control
  flow never depends on a reference's latency, so the worker keeps running
  while the backend times the reference (this is the shared-memory implicit
  communication of the paper's communicator);
* control events (OS calls, lock/unlock/barrier, EXIT) **block** the worker
  until the backend replies, because the result feeds back into execution;
* events carry the pending-cycle delta accumulated since the previous event,
  so the backend can stamp exact execution times in order.

Worker-side pre-timing (leases)
-------------------------------
With ``SimConfig.lookahead`` on, a worker that has streamed
``SimConfig.worker_lease`` consecutive full fire-and-forget batches sends a
lease request (``"lr"``) and blocks. When the simulation reaches that stream
position the proxy either denies (``"ld"``) or grants (``"lg"``) a window
``[t0, T)`` together with a read-only snapshot of the worker's own L1 state
and page table. The worker then times its next references *itself* against
a private mirror — but only references that satisfy the L1 fast-path
full-hit predicate, which touch nothing outside the issuer's private state
(see DESIGN.md, "Conservative lookahead windows") — and reports the result
as one pre-timed delta (``"pr"``) instead of dozens of event messages.
``T`` is the earliest cycle at which any rival frontend or backend task
could act at all, so the strict engine would have processed those
references back-to-back anyway: the reported timing is bit-identical.

Conservative ordering
---------------------
The backend may only process the globally-earliest event. A worker whose
queue is empty might still produce an earlier event, but never earlier than
its current virtual time — that lower bound tells the backend when it is
safe to proceed and when it must wait for a pipe (the same reasoning the
COMPASS communicator applies while scanning event ports). With the same
timestamps and the same pid tie-break as inline mode, parallel runs produce
bit-identical simulated results.

Limitation: workers own their functional memory privately, so programs whose
*values* must be shared across processes need inline mode; timing-level
sharing (locks, coherence, placement) works fully.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from collections import deque
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint.micro import SpecOverlay
from ..core import events as ev
from ..core.engine import Engine
from ..core.errors import HostError
from ..core.jsonable import to_jsonable
from ..core.frontend import ProcState, SimProcess
from ..core.stats import StatsRegistry
from ..isa.assembler import assemble
from ..isa.interpreter import Interpreter, Machine
from ..isa.memory import DataMemory
from ..mem import hierarchy as _hier
from ..mem.hierarchy import KERNEL_BASE, MemorySystem

#: sentinel yielded by the proxy while its worker computes ahead
COMPUTING = object()
#: default worker-side batch size for fire-and-forget events (the live
#: value comes from ``SimConfig.worker_batch``)
BATCH = 64


class WorkerSpec:
    """What a worker process runs: program text + data segments."""

    def __init__(self, name: str, program_text: str,
                 segments: Sequence[Tuple[int, int]] = ((0x10_0000, 1 << 22),),
                 regs: Optional[Dict[int, int]] = None) -> None:
        self.name = name
        self.program_text = program_text
        self.segments = list(segments)
        self.regs = dict(regs or {})


def _encode_reply(reply) -> tuple:
    if isinstance(reply, ev.SyscallResult):
        return ("sr", reply.value, reply.errno, reply.data)
    return ("i", reply if reply is not None else 0)


def _decode_reply(msg) -> object:
    if msg[0] == "sr":
        return ev.SyscallResult(msg[1], msg[2], msg[3])
    return msg[1]


def _finish_drain(conn: Connection, t0: int, n_mem: int, n_adv: int,
                  n_lines: int, t1: int, li1: int, touched: dict,
                  flips: list, ov, t: int) -> None:
    """Send a drain result; when it carries a non-empty speculative tail,
    block for the backend's commit/rollback verdict and re-stream the
    buffered tail references as ordinary events on rollback (they get
    authoritative backend timing, which — the mirror being exact — equals
    the speculated timing, so either verdict yields identical results)."""
    if ov is not None and (ov.n_mem or ov.n_adv):
        conn.send(("pr", n_mem, n_adv, n_lines, t1 - t0, li1,
                   touched, flips, ov.payload(t - t1)))
        verdict = conn.recv()
        if verdict[0] != "sc":
            conn.send(("b", ov.refs))
    else:
        conn.send(("pr", n_mem, n_adv, n_lines, t1 - t0, li1,
                   touched, flips, None))


def _drain_lease(conn: Connection, gen, m, grant: tuple):
    """Consume fire-and-forget events worker-side under a granted lease.

    ``grant`` carries the window ``[t0, T)`` plus a snapshot of the
    worker's own L1 line states, per-set LRU orders and page table. Each
    reference is qualified against the mirror with exactly the backend's
    L1 fast-path predicate (translate, every line present, writes need
    state >= EXCLUSIVE) and, when it qualifies, timed with exactly the
    fast-path latency and applied to the mirror (LRU move-to-front,
    EXCLUSIVE->MODIFIED flips). The first reference that would take the
    slow path — or would issue at or past the window end — stops the
    drain; it is returned *unconsumed* (its pending delta still in
    ``m.pending``) for normal streaming. The drain result goes back as
    one ``"pr"`` message.

    When the grant carries a speculation window ``[T, T_spec)`` the drain
    keeps going optimistically past ``T``: tail mutations are redirected
    into a :class:`SpecOverlay` (the committed ``touched`` dict aliases
    the live mirror lists, so the tail must not write through them) and
    every tail reference is buffered. The ``"pr"`` then carries the tail
    as a second payload and the worker blocks for the backend's
    commit/rollback verdict (see ``_finish_drain``).

    ``cap`` bounds how many events the drain may consume (0 = unbounded);
    fast-forward sampling grants use it to stop at the sampling-window
    boundary. On program end (StopIteration) the ``"pr"`` — and any
    verdict exchange — happens before the exception propagates, so the
    exit message follows in stream order.
    """
    (_, t0, T, states, sets, utable, pshift, pmask, lshift, smask,
     nsets, l1_lat, T_spec, cap, _ff) = grant
    sget = states.get
    uget = utable.get
    t = t0
    #: issue time of the last consumed reference — the strict engine's
    #: global clock lands there (advance_to at each event's issue time)
    last_issue = t0
    n_mem = n_adv = n_lines = 0
    touched: dict = {}
    flips: list = []
    left = cap if cap > 0 else (1 << 62)
    ov = None
    t1 = t0
    li1 = t0
    try:
        evt = gen.send(0)
        while True:         # committed window [t0, T)
            k = evt.kind
            if k > 3 or left <= 0:   # control event: stream it normally
                break
            delta = m.pending
            nt = t + delta
            if nt >= T:
                break
            if k == 3:          # ADVANCE: a poll point, zero latency
                m.pending = 0
                t = nt
                last_issue = nt
                n_adv += 1
                left -= 1
                evt = gen.send(0)
                continue
            vaddr = evt.addr
            if vaddr >= KERNEL_BASE:
                break
            ppn = uget(vaddr >> pshift)
            if ppn is None:
                break
            paddr = (ppn << pshift) | (vaddr & pmask)
            line = paddr >> lshift
            size = evt.size
            last = (paddr + (size or 1) - 1) >> lshift
            ok = True
            sts = []
            l = line
            while l <= last:
                st = sget(l)
                if st is None or (k != 0 and st < 2):
                    ok = False
                    break
                sts.append(st)
                l += 1
            if not ok:
                break
            nlines = last - line + 1
            for j in range(nlines):
                l = line + j
                idx = l & smask if smask >= 0 else l % nsets
                s = sets[idx]
                if s[0] != l:
                    s.remove(l)
                    s.insert(0, l)
                touched[idx] = s
                if k != 0 and sts[j] == 2:   # EXCLUSIVE -> MODIFIED
                    states[l] = 3
                    flips.append(l)
            m.pending = 0
            t = nt + l1_lat * nlines + (4 if k == 2 else 0)
            last_issue = nt
            n_mem += 1
            n_lines += nlines
            evt = gen.send(0)
        t1 = t
        li1 = last_issue
        if T_spec > T:
            # speculative tail [T, T_spec): same qualification, same
            # timing, but mutations go into the overlay and references
            # are buffered for re-streaming on rollback. Qualifying
            # against the committed mirror stays exact: overlay flips
            # only ever raise 2 -> 3, which cannot change line presence
            # or the write predicate, and LRU order never affects the
            # fast path.
            ov = SpecOverlay()
            ov.last_issue = li1
            while True:
                k = evt.kind
                if k > 3 or left <= 0:
                    break
                delta = m.pending
                nt = t + delta
                if nt >= T_spec:
                    break
                if k == 3:
                    m.pending = 0
                    t = nt
                    ov.last_issue = nt
                    ov.n_adv += 1
                    ov.refs.append((k, evt.addr, evt.size, delta))
                    left -= 1
                    evt = gen.send(0)
                    continue
                vaddr = evt.addr
                if vaddr >= KERNEL_BASE:
                    break
                ppn = uget(vaddr >> pshift)
                if ppn is None:
                    break
                paddr = (ppn << pshift) | (vaddr & pmask)
                line = paddr >> lshift
                size = evt.size
                last = (paddr + (size or 1) - 1) >> lshift
                ok = True
                sts = []
                l = line
                while l <= last:
                    st = sget(l)
                    if st is None or (k != 0 and st < 2):
                        ok = False
                        break
                    sts.append(st)
                    l += 1
                if not ok:
                    break
                nlines = last - line + 1
                for j in range(nlines):
                    l = line + j
                    idx = l & smask if smask >= 0 else l % nsets
                    s = ov.set_list(idx, sets)
                    if s[0] != l:
                        s.remove(l)
                        s.insert(0, l)
                    if k != 0 and sts[j] == 2 and l not in ov.states:
                        ov.states[l] = 3
                m.pending = 0
                t = nt + l1_lat * nlines + (4 if k == 2 else 0)
                ov.last_issue = nt
                ov.n_mem += 1
                ov.n_lines += nlines
                ov.refs.append((k, vaddr, size, delta))
                left -= 1
                evt = gen.send(0)
    except StopIteration:
        if ov is None:
            t1, li1 = t, last_issue
        _finish_drain(conn, t0, n_mem, n_adv, n_lines, t1, li1,
                      touched, flips, ov, t)
        raise
    _finish_drain(conn, t0, n_mem, n_adv, n_lines, t1, li1,
                  touched, flips, ov, t)
    return evt


def _drain_lease_ff(conn: Connection, gen, m, grant: tuple):
    """Fast-forward-mode lease drain (sampling's functional warming).

    Instead of an L1 mirror the grant carries the calibrated
    constant-latency chain ``(base, frac, err0)``; the worker replicates
    ``MemorySystem._ff_access`` exactly — translate, charge ``base``
    cycles plus the fractional-error carry (+4 for atomics) — and buffers
    the touched line runs so the backend can warm its caches in one bulk
    ``_ff_warm`` fold. The first untranslated or kernel reference stops
    the drain (those may allocate pages or fault — backend work). No
    speculative tail: fast-forward timing has no rival-visible state to
    speculate against, and the error accumulator makes drains singletons
    anyway (the backend grants at most one at a time).
    """
    (_, t0, T, _states, _sets, utable, pshift, pmask, lshift, _smask,
     _nsets, _l1_lat, _T_spec, cap, ff) = grant
    base, frac, err = ff
    uget = utable.get
    t = t0
    last_issue = t0
    n_mem = n_adv = 0
    left = cap if cap > 0 else (1 << 62)
    line0s: list = []
    nls: list = []
    wrs: list = []
    try:
        evt = gen.send(0)
        while True:
            k = evt.kind
            if k > 3 or left <= 0:
                break
            delta = m.pending
            nt = t + delta
            if nt >= T:
                break
            if k == 3:
                m.pending = 0
                t = nt
                last_issue = nt
                n_adv += 1
                left -= 1
                evt = gen.send(0)
                continue
            vaddr = evt.addr
            if vaddr >= KERNEL_BASE:
                break
            ppn = uget(vaddr >> pshift)
            if ppn is None:
                break
            paddr = (ppn << pshift) | (vaddr & pmask)
            line = paddr >> lshift
            size = evt.size
            last = (paddr + (size or 1) - 1) >> lshift
            lat = base
            err += frac
            if err >= 1.0:
                err -= 1.0
                lat += 1
            if k == 2:
                lat += 4
            line0s.append(line)
            nls.append(last - line + 1)
            wrs.append(k != 0)
            m.pending = 0
            t = nt + lat
            last_issue = nt
            n_mem += 1
            left -= 1
            evt = gen.send(0)
    except StopIteration:
        conn.send(("pr", n_mem, n_adv, 0, t - t0, last_issue,
                   ("ff", line0s, nls, wrs, err), [], None))
        raise
    conn.send(("pr", n_mem, n_adv, 0, t - t0, last_issue,
               ("ff", line0s, nls, wrs, err), [], None))
    return evt


def _worker_main(conn: Connection, spec_name: str, program_text: str,
                 segments: list, regs: dict,
                 cpu_affinity: Optional[frozenset] = None,
                 translate: bool = True, batch_size: int = BATCH,
                 lease_every: int = 0) -> None:
    """Child-process body: interpret and stream events."""
    if cpu_affinity:
        try:
            os.sched_setaffinity(0, cpu_affinity)
        except (AttributeError, OSError):
            pass
    batch: list = []

    def flush() -> None:
        if batch:
            conn.send(("b", list(batch)))
            batch.clear()

    try:
        prog = assemble(program_text, spec_name)
        dm = DataMemory(spec_name)
        for base, size in segments:
            dm.map_segment(base, size)
        m = Machine(dm)
        for r, v in regs.items():
            m.regs[r] = v
        gen = Interpreter(prog, m).run(translate=translate)
        reply = None
        full_runs = 0
        evt = next(gen)
        while True:
            delta = m.pending
            m.pending = 0
            if evt.kind <= ev.EvKind.ADVANCE:   # memory / advance
                batch.append((evt.kind, evt.addr, evt.size, delta))
                reply = 0
                if len(batch) >= batch_size:
                    flush()
                    full_runs += 1
                    if lease_every and full_runs >= lease_every:
                        # steady fire-and-forget state: ask to time the
                        # next stretch ourselves (deterministic stream
                        # position — right after a full batch flush)
                        full_runs = 0
                        conn.send(("lr",))
                        grant = conn.recv()
                        if grant[0] == "lg":
                            if grant[14] is not None:
                                evt = _drain_lease_ff(conn, gen, m, grant)
                            else:
                                evt = _drain_lease(conn, gen, m, grant)
                            continue
            else:
                full_runs = 0
                flush()
                conn.send(("c", evt.kind, evt.addr, evt.size, evt.arg, delta))
                reply = _decode_reply(conn.recv())
            evt = gen.send(reply)
    except StopIteration as si:
        flush()
        status = si.value if isinstance(si.value, int) else 0
        conn.send(("exit", status, m.pending))
    except (EOFError, BrokenPipeError):
        pass
    except Exception as exc:   # noqa: BLE001 - forwarded to the supervisor
        # interpreter / protocol failure: tell the backend why before dying,
        # so the supervisor can report it instead of a bare EOF
        try:
            conn.send(("crash", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError, ValueError):
            pass
    finally:
        conn.close()


class _Worker:
    """Backend-side handle for one worker process.

    Workers are pure functions of their spec, so a crashed worker can be
    relaunched and its event stream replayed deterministically: the
    supervisor discards the first ``skip`` (= already consumed) logical
    messages of the fresh stream and answers re-sent control events from
    the recorded reply log.
    """

    __slots__ = ("spec", "proc", "conn", "process", "queue", "computing",
                 "alive", "consumed", "streamed", "skip", "reply_cursor",
                 "control_replies", "restarts", "restartable", "exit_seen",
                 "last_msgs", "death_reason")

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.proc: Optional[SimProcess] = None
        self.conn: Optional[Connection] = None
        self.process: Optional[mp.Process] = None
        #: decoded event messages waiting to be replayed into the proxy
        self.queue: deque = deque()
        self.computing = True
        self.alive = True
        #: logical messages the proxy has consumed (the replay frontier)
        self.consumed = 0
        #: logical messages received over the *current* pipe
        self.streamed = 0
        #: after a restart: how many fresh-stream messages are replay
        self.skip = 0
        #: recorded control replies already re-sent during replay
        self.reply_cursor = 0
        #: every encoded control reply, in consumption order
        self.control_replies: List[tuple] = []
        self.restarts = 0
        self.restartable = True
        self.exit_seen = False
        #: ring of the last raw messages, for the forensic report
        self.last_msgs: deque = deque(maxlen=6)
        self.death_reason = ""


class ParallelEngine(Engine):
    """Engine whose frontends are real host processes."""

    def __init__(self, cfg, stats: Optional[StatsRegistry] = None,
                 host_cpus: Optional[int] = None) -> None:
        """``host_cpus`` restricts the whole simulator (backend + workers)
        to the first N host CPUs — the knob behind the paper's Table 3
        uniprocessor-vs-SMP comparison."""
        super().__init__(cfg, stats)
        # worker proxies replay one decoded event per generator step; the
        # batched port pipeline only applies to in-process frontends
        self._frontend_batching = False
        self._workers: Dict[int, _Worker] = {}
        self._ctx = mp.get_context("fork")
        # -- worker-side pre-timing (lookahead layer 2) -------------------
        self._worker_batch = max(1, getattr(cfg, "worker_batch", BATCH))
        self._lease_on = bool(getattr(cfg, "lookahead", True)
                              and getattr(cfg, "worker_lease", 0)
                              and self.memsys._fast_on)
        #: consecutive full fire-and-forget batches before a worker asks
        #: for a lease (0 = workers never ask)
        self._worker_lease = (getattr(cfg, "worker_lease", 0)
                              if self._lease_on else 0)
        #: a granted window shorter than this is not worth the snapshot
        self.lease_min_window = 64
        #: pre-timed events to drain from the run loop's event budget
        self._pretimed = 0
        #: run-bound caps for lease windows, stashed by run()
        self._run_until = self._max_cycles + 1
        self._run_budget_capped = False
        self.batch_stats.setdefault("leases", 0)
        self.batch_stats.setdefault("lease_refs", 0)
        self.batch_stats.setdefault("lease_denied", 0)
        self.batch_stats.setdefault("ff_leases", 0)
        #: leases granted whose "pr" fold has not arrived yet.
        #: Fast-forward grants must be singletons — the calibrated
        #: latency chain threads one global fractional-error accumulator
        #: through every reference, so only one drain may consume it at
        #: a time — and are denied while any lease is outstanding.
        self._lease_open = 0
        # -- worker supervision knobs ------------------------------------
        #: restarts allowed per worker before giving up with a HostError
        self.max_worker_restarts = 2
        #: base wall-clock delay before a relaunch (doubles per restart)
        self.worker_backoff = 0.05
        #: blocking-harvest poll period: how often silent workers get a
        #: liveness check (seconds)
        self.heartbeat_interval = 0.25
        #: a live worker silent for this long while the backend is blocked
        #: on it is declared hung (seconds)
        self.worker_hang_timeout = 60.0
        #: control replies kept for crash replay; past this the worker is
        #: no longer restartable (the log would be unbounded)
        self.replay_log_limit = 65536
        self._affinity: Optional[frozenset] = None
        if host_cpus is not None:
            avail = sorted(os.sched_getaffinity(0))
            self._affinity = frozenset(avail[:max(1, host_cpus)])
            try:
                os.sched_setaffinity(0, self._affinity)
            except OSError:
                pass

    # -- spawning ------------------------------------------------------------

    def spawn_worker(self, spec: WorkerSpec) -> SimProcess:
        """Launch a worker process and register its frontend."""
        w = _Worker(spec)
        self._launch(w)
        proc = self.spawn(spec.name, lambda _api, w=w: self._proxy(w))
        w.proc = proc
        self._workers[proc.pid] = w
        return proc

    def _launch(self, w: _Worker) -> None:
        """(Re)start the host process behind ``w`` on a fresh pipe."""
        parent, child = self._ctx.Pipe()
        p = self._ctx.Process(
            target=_worker_main,
            args=(child, w.spec.name, w.spec.program_text, w.spec.segments,
                  w.spec.regs, self._affinity, self._frontend_translate,
                  self._worker_batch, self._worker_lease),
            daemon=True)
        p.start()
        child.close()
        w.conn = parent
        w.process = p

    def _proxy(self, w: _Worker):
        """Engine-side base frame replaying the worker's event stream."""
        clock = None
        while True:
            while not w.queue:
                # park until the harvest loop refills the queue; the sentinel
                # rides in an ADVANCE event so the base stepper can stamp it
                yield ev.Event(ev.EvKind.ADVANCE, 0, 0, COMPUTING)
            msg = w.queue.popleft()
            w.consumed += 1
            tag = msg[0]
            if tag == "exit":
                if clock is None:
                    clock = w.proc.clock
                clock.pending += msg[2]
                w.alive = False
                return msg[1]
            if clock is None:
                clock = w.proc.clock
            if tag == "m":
                kind, addr, size, delta = msg[1], msg[2], msg[3], msg[4]
                clock.pending += delta
                yield ev.Event(kind, addr, size)
            elif tag == "lr":
                # lease request: everything the worker streamed before it
                # has been consumed and timed (stream order), so the
                # simulation is exactly at the worker's position — decide
                # and answer without yielding. Recorded like a control
                # reply so crash replay re-answers it identically.
                enc = self._lease_decision(w)
                if w.restartable:
                    w.control_replies.append(enc)
                    if (len(w.control_replies) > self.replay_log_limit
                            and w.streamed >= w.skip):
                        w.restartable = False
                        w.control_replies.clear()
                        w.reply_cursor = 0
                if w.streamed >= w.skip:
                    try:
                        w.conn.send(enc)
                    except (BrokenPipeError, OSError):
                        self._worker_failed(
                            w, "pipe closed while answering a lease request")
            elif tag == "pr":
                # pre-timed drain result: fold it into the proxy's clock
                # and the backend caches, no yield (the engine never saw
                # these references as events)
                self._apply_pretimed(w, msg)
            else:   # control
                kind, addr, size, arg, delta = (msg[1], msg[2], msg[3],
                                                msg[4], msg[5])
                clock.pending += delta
                reply = yield ev.Event(kind, addr, size, arg)
                # record before sending: whether the send succeeds or the
                # worker dies mid-flight, the reply is available for replay
                enc = _encode_reply(reply)
                if w.restartable:
                    w.control_replies.append(enc)
                    if (len(w.control_replies) > self.replay_log_limit
                            and w.streamed >= w.skip):
                        # log too large to keep replaying; not mid-replay,
                        # so it is safe to drop it and give up restarts
                        w.restartable = False
                        w.control_replies.clear()
                        w.reply_cursor = 0
                if w.streamed >= w.skip:
                    # the worker is past the replay frontier and blocked in
                    # recv on the current pipe
                    try:
                        w.conn.send(enc)
                    except (BrokenPipeError, OSError):
                        self._worker_failed(
                            w, "pipe closed while sending a control reply")
                # else: a restarted worker has not re-reached this control
                # yet; _ingest sends the recorded reply when it does

    # -- harvest -------------------------------------------------------------

    def _harvest(self, block_on: Optional[List[_Worker]] = None) -> None:
        """Drain worker pipes into queues; optionally block until at least
        one of ``block_on`` delivers. Re-steps proxies that were computing.

        Blocking waits poll at ``heartbeat_interval`` so a worker that died
        (or hung) without closing its pipe is detected and handed to the
        supervisor instead of blocking the backend forever.
        """
        if block_on:
            ready: List[Connection] = []
            waited = 0.0
            while True:
                live = [w for w in block_on
                        if w.alive and w.conn is not None]
                if not live:
                    break
                ready = conn_wait([w.conn for w in live],
                                  timeout=self.heartbeat_interval)
                if ready:
                    break
                # heartbeat expired with nothing on the wire: make sure the
                # silent workers still exist before waiting again
                waited += self.heartbeat_interval
                dead = [w for w in live
                        if w.process is not None
                        and not w.process.is_alive()]
                if dead:
                    for w in dead:
                        self._worker_failed(
                            w, "worker process died while the backend was "
                               "waiting for its events")
                    continue   # restarted workers stream on fresh pipes
                if waited >= self.worker_hang_timeout:
                    w = live[0]
                    raise HostError(
                        self._forensic(
                            w, f"no events for {waited:.0f}s while the "
                               "backend was blocked on this worker "
                               "(worker hung)"),
                        report=self._forensic_report(
                            w, "worker hung", None))
        else:
            conns = [w.conn for w in self._workers.values()
                     if w.alive and w.conn is not None]
            if not conns:
                return
            ready = conn_wait(conns, timeout=0)
        by_conn = {w.conn: w for w in self._workers.values()
                   if w.alive and w.conn is not None}
        for c in ready:
            w = by_conn.get(c)
            if w is None or not w.alive or w.conn is not c:
                continue   # stale pipe of a worker restarted this call
            try:
                while c.poll():
                    msg = c.recv()
                    if msg[0] == "b":
                        ok = True
                        for kind, addr, size, delta in msg[1]:
                            if not self._ingest(w, ("m", kind, addr, size,
                                                    delta)):
                                ok = False
                                break
                        if not ok:
                            break
                    elif not self._ingest(w, msg):
                        break
            except (EOFError, OSError):
                self._worker_failed(w, "worker pipe closed unexpectedly")
        # resume proxies that were starved and now have input
        for w in self._workers.values():
            p = w.proc
            if (p is not None and w.queue and p.port_event is None
                    and p.state == ProcState.RUNNING and p.reply is None
                    and not p.kernel_mode):
                self._step(p)

    def _ingest(self, w: _Worker, msg: tuple) -> bool:
        """Deliver one logical worker message.

        Returns False when the message reported a crash and the failure
        was already handled (restart or raise), so the caller must stop
        reading the now-stale pipe.
        """
        if msg[0] == "crash":
            self._worker_failed(w, f"worker crashed: {msg[1]}")
            return False
        w.last_msgs.append(msg)
        if msg[0] == "exit":
            w.exit_seen = True
        if w.streamed < w.skip:
            # replaying a restarted worker's deterministic stream: this
            # message was consumed before the crash — discard it, but
            # answer re-sent controls (and lease requests — the recorded
            # grant carries the original snapshot, so the re-run drain is
            # deterministic — and speculation verdicts, on which the
            # re-drained worker blocks again) from the recorded reply log
            w.streamed += 1
            if msg[0] in ("c", "lr") or (msg[0] == "pr"
                                         and msg[8] is not None):
                if w.reply_cursor < len(w.control_replies):
                    enc = w.control_replies[w.reply_cursor]
                    w.reply_cursor += 1
                    try:
                        w.conn.send(enc)
                    except (BrokenPipeError, OSError):
                        self._worker_failed(
                            w, "worker pipe closed during replay")
                        return False
                # else: the in-flight frontier — the simulation has not
                # produced this reply yet; the proxy sends it on arrival
            return True
        w.streamed += 1
        w.queue.append(msg)
        return True

    # -- worker-side pre-timing ----------------------------------------------

    def _lease_decision(self, w: _Worker) -> tuple:
        """Grant or deny a worker's lease request (see module docstring).

        A grant is safe only when (a) every reference the worker will
        drain can be timed from its own private L1 state — enforced
        reference-by-reference worker-side via the fast-path predicate —
        and (b) nothing else can act before the window's end ``T``: no
        backend task, no rival frontend event (with the pid tie-break),
        and no pending delivery for this frontend. Anything that needs
        the strict per-reference stream (checkpoint recording/replay,
        memory taps, bounded max_events stepping) denies outright.
        """
        p = w.proc
        ms = self.memsys
        if (not self._lease_on or self._ckpt is not None
                or ms.__class__ is not MemorySystem
                or "access" in ms.__dict__ or not ms._fast_on
                or self._run_budget_capped
                or p is None or p.cpu < 0 or p.kernel_mode
                or p.pending_batches):
            self.batch_stats["lease_denied"] += 1
            return ("ld",)
        cpu_state = self.comm.cpus[p.cpu]
        if ((cpu_state.irq_pending and cpu_state.irq_enabled
                and p.intr_enabled and p.mode != "interrupt")
                or (not p.kernel_mode and self.signals.has_pending(p.pid))
                or p.preempt_pending):
            self.batch_stats["lease_denied"] += 1
            return ("ld",)
        t0 = p.vtime + p.clock.pending
        T = self._run_until
        t_task = self.gsched.next_time()
        if t_task is not None and t_task < T:
            T = t_task
        pid = p.pid
        for q in self.comm.running():
            if q is p:
                continue
            e = q.port_event
            # a computing rival's next event can be no earlier than its
            # published virtual time plus accumulated pending cycles
            b = e.time if e is not None else q.vtime + q.clock.pending
            if pid < q.pid:
                b += 1
            if b < T:
                T = b
        cpu = p.cpu
        sp = ms._spaces.get(p.pid)
        utable = dict(sp.table) if sp is not None else {}
        if ms.ff_active:
            if T - t0 < self.lease_min_window:
                self.batch_stats["lease_denied"] += 1
                return ("ld",)
            # fast-forward sampling mode: grant a calibrated-latency
            # drain instead (see _drain_lease_ff). Deny without numpy
            # (the fold needs the bulk _ff_warm path), while any other
            # lease is outstanding (the error accumulator is global), or
            # when the sampling window is about to switch; ``cap`` stops
            # the drain exactly at the window's event-count boundary.
            sam = self._sampler
            cap = 0
            if sam is not None:
                cap = sam._next_switch - self.events_processed
            if (_hier._np is None or self._lease_open
                    or (sam is not None and cap <= 0)):
                self.batch_stats["lease_denied"] += 1
                return ("ld",)
            self._lease_open += 1
            return ("lg", t0, T, {}, [], utable,
                    ms._page_shift, ms._page_mask, ms._line_shift,
                    ms._l1_set_mask, ms._l1_nsets, ms._l1_latency,
                    T, cap, (ms._ff_base, ms._ff_frac, ms._ff_err))
        T_spec = T
        if self._spec_on:
            # optimistic tail: let the worker keep pre-timing past T into
            # [T, T_spec); the fold validates post-hoc against what the
            # rivals actually streamed in the meantime and rolls the tail
            # back if one could have intervened. Capped by the next
            # backend task and the run bound — crossing either would
            # guarantee a rollback.
            T_spec = T + self._spec_quantum
            if t_task is not None and t_task < T_spec:
                T_spec = t_task
            if self._run_until < T_spec:
                T_spec = self._run_until
        if T_spec - t0 < self.lease_min_window:
            # too small even with the optimistic tail: this is where the
            # conservative-only leases stall on symmetric workloads —
            # rival bounds sit a few dozen cycles out — and exactly what
            # speculation exists to break through
            self.batch_stats["lease_denied"] += 1
            return ("ld",)
        self._lease_open += 1
        return ("lg", t0, T,
                dict(ms._l1_states[cpu]),
                [list(s) for s in ms._l1_sets[cpu]],
                utable,
                ms._page_shift, ms._page_mask, ms._line_shift,
                ms._l1_set_mask, ms._l1_nsets, ms._l1_latency,
                T_spec, 0, None)

    def _apply_pretimed(self, w: _Worker, msg: tuple) -> None:
        """Fold a worker's ``"pr"`` drain result into the backend.

        The drained references were all L1 fast-path full hits, so their
        only backend-visible effects are the issuer's own LRU orders,
        EXCLUSIVE->MODIFIED flips (mirrored into the inclusive L2) and
        the commutative hit/access counters — exactly what the strict
        engine would have produced processing them one event at a time.
        A fast-forward drain (``touched`` is a tagged tuple) folds
        through the bulk ``_ff_warm`` path instead.

        A speculative tail rides in ``spec``: it is validated *now* —
        the Time Warp commit point — against everything the rivals have
        streamed since the grant, and the commit/rollback verdict is
        sent back to the worker blocked on it. Either verdict yields
        bit-identical simulated results (a rolled-back tail is
        re-streamed and re-timed to the same values), so the wall-clock
        dependence of the verdict is observability-only.
        """
        (_, n_mem, n_adv, n_lines, advance, last_issue, touched, flips,
         spec) = msg
        p = w.proc
        ms = self.memsys
        cpu = p.cpu
        bs = self.batch_stats
        if self._lease_open:
            self._lease_open -= 1
        if isinstance(touched, tuple):      # fast-forward-mode drain
            _tag, line0s, nls, wrs, err = touched
            if n_mem:
                np_ = _hier._np
                ms._ff_warm(cpu, np_.array(line0s, dtype=np_.int64),
                            np_.array(nls, dtype=np_.int64),
                            np_.array(wrs, dtype=bool))
                ms.accesses += n_mem
                ms.ff_refs += n_mem
                ms._ff_err = err
            bs["ff_leases"] += 1
        else:
            sets = ms._l1_sets[cpu]
            for idx, lst in touched.items():
                sets[idx][:] = lst
            states = ms._l1_states[cpu]
            l2s = ms._l2_states[cpu] if ms._l2_states is not None else None
            for line in flips:
                states[line] = 3
                if l2s is not None and line in l2s:
                    l2s[line] = 3
            ms.l1s[cpu].hits += n_lines
            ms.accesses += n_mem
            ms.fast_hits += n_mem
            bs["leases"] += 1
        bs["lease_refs"] += n_mem
        n = n_mem + n_adv
        if spec is not None:
            (n2_mem, n2_adv, n2_lines, advance2, last_issue2, touched2,
             flips2) = spec
            bs["sp_windows"] += 1
            end2 = p.vtime + p.clock.pending + advance + advance2
            ok = self._spec_verdict(p, end2)
            enc = ("sc",) if ok else ("sv",)
            # record before sending, exactly like control replies: a
            # restarted worker re-blocks on the replayed "pr" and must
            # get the original verdict back
            if w.restartable:
                w.control_replies.append(enc)
                if (len(w.control_replies) > self.replay_log_limit
                        and w.streamed >= w.skip):
                    w.restartable = False
                    w.control_replies.clear()
                    w.reply_cursor = 0
            if w.streamed >= w.skip:
                try:
                    w.conn.send(enc)
                except (BrokenPipeError, OSError):
                    self._worker_failed(
                        w, "pipe closed while sending a speculation "
                           "verdict")
            if ok:
                sets = ms._l1_sets[cpu]
                for idx, lst in touched2.items():
                    sets[idx][:] = lst
                states = ms._l1_states[cpu]
                l2s = (ms._l2_states[cpu]
                       if ms._l2_states is not None else None)
                for line in flips2:
                    states[line] = 3
                    if l2s is not None and line in l2s:
                        l2s[line] = 3
                ms.l1s[cpu].hits += n2_lines
                ms.accesses += n2_mem
                ms.fast_hits += n2_mem
                n += n2_mem + n2_adv
                advance += advance2
                last_issue = last_issue2
                bs["sp_commits"] += 1
                bs["sp_refs"] += n2_mem
                bs["lease_refs"] += n2_mem
                self._spec_row = 0
                q2 = self._spec_quantum << 1
                if q2 <= self._spec_quantum_max:
                    self._spec_quantum = q2
            else:
                # the tail comes back as ordinary events ("b") right
                # after the worker sees the verdict; shrink the window
                # and stand down after too many consecutive misses
                bs["sp_rollbacks"] += 1
                q2 = self._spec_quantum >> 1
                if q2 >= self._spec_quantum_min:
                    self._spec_quantum = q2
                self._spec_row += 1
                if (self._spec_max_rollbacks
                        and self._spec_row >= self._spec_max_rollbacks):
                    self._spec_on = False
        if n:
            # materialise the drained span into virtual time directly (not
            # clock.pending): the program may exit before another event, and
            # pending cycles are dropped at exit exactly like the strict
            # path drops trailing compute — but these cycles were *timed*
            # references. The global clock lands on the last issue time, as
            # advance_to would have per event; both are below the window
            # end, hence below every rival event and backend task.
            p.vtime += p.clock.pending + advance
            p.clock.pending = 0
            self.gsched.advance_to(last_issue)
            self._last_progress = last_issue
        self.events_processed += n
        self._pretimed += n

    def _spec_verdict(self, p: SimProcess, end2: int) -> bool:
        """Validate a worker's speculative tail at fold time.

        This is the Time Warp commit test: the tail holds iff no backend
        task and no rival action can be ordered before its completion
        ``end2`` (with the usual pid tie-break). Rival *parked* events
        are frozen since the grant — the run loop blocks on the leased
        worker, so nothing else has been processed — but rival pipes
        kept delivering in wall-clock time; polling them first and
        walking the queued streams is exactly the information gain that
        lets optimistic windows commit where the conservative grant-time
        bound had to stop.
        """
        t_task = self.gsched.next_time()
        if t_task is not None and t_task < end2:
            return False
        self._poll_pipes()
        pid = p.pid
        for q in self.comm.running():
            if q is p:
                continue
            b = self._rival_stream_bound(q, end2)
            if pid < q.pid:
                b += 1
            if b < end2:
                return False
        return True

    def _rival_stream_bound(self, q: SimProcess, cap: int) -> int:
        """Earliest cycle at which rival ``q`` could act *non-invisibly*,
        walking its parked event and then its queued stream.

        The walk mirrors ``Engine._invisible_bound`` per reference
        (pending deliveries stop it; loads/stores are qualified with a
        read-only fast-path probe; ADVANCE poll points are pure time —
        the caller has already bounded every flag-setting channel) and
        additionally consumes the rival's already-delivered-but-unfolded
        message queue, clamped at ``cap``. Every stop case returns a
        cycle the strict engine could not order before.
        """
        t = q.vtime + q.clock.pending
        e = q.port_event
        if e is not None:
            t = e.time
        if q.cpu < 0:
            return t
        cs = self.comm.cpus[q.cpu]
        if ((cs.irq_pending and cs.irq_enabled and q.intr_enabled
                and q.mode != "interrupt")
                or (not q.kernel_mode and self.signals.has_pending(q.pid))
                or q.preempt_pending):
            return t
        ms = self.memsys
        if e is not None:
            kind = e.kind
            if kind == 9:
                return ms.invisible_until(e.pid, q.cpu, e, cap)
            if kind > 3:
                return t
            if kind != 3:
                lat = ms.ref_invisible_latency(q.pid, q.cpu, kind,
                                               e.addr, e.size)
                if lat < 0:
                    return t
                t += lat
            if t >= cap:
                return cap
        w = self._workers.get(q.pid)
        if w is None:
            return t
        for msg in w.queue:
            tag = msg[0]
            if tag == "m":
                issue = t + msg[4]
                if issue >= cap:
                    return cap
                kind = msg[1]
                if kind == 3:
                    t = issue
                    continue
                lat = ms.ref_invisible_latency(q.pid, q.cpu, kind,
                                               msg[2], msg[3])
                if lat < 0:
                    return issue
                t = issue + lat
            elif tag == "c":
                return t + msg[5]
            elif tag == "exit":
                return t + msg[2]
            elif tag == "pr" and msg[8] is None:
                # a queued conservative drain result: all fast-path
                # full hits (invisible), spanning ``advance`` cycles
                t += msg[4]
            else:
                return t
        return t

    def _poll_pipes(self) -> None:
        """Drain every ready worker pipe into its queue *without*
        re-stepping any proxy (safe to call from inside a proxy step,
        unlike ``_harvest``)."""
        by_conn = {w.conn: w for w in self._workers.values()
                   if w.alive and w.conn is not None}
        if not by_conn:
            return
        ready = conn_wait(list(by_conn), timeout=0)
        for c in ready:
            w = by_conn.get(c)
            if w is None or not w.alive or w.conn is not c:
                continue
            try:
                while c.poll():
                    msg = c.recv()
                    if msg[0] == "b":
                        ok = True
                        for kind, addr, size, delta in msg[1]:
                            if not self._ingest(w, ("m", kind, addr, size,
                                                    delta)):
                                ok = False
                                break
                        if not ok:
                            break
                    elif not self._ingest(w, msg):
                        break
            except (EOFError, OSError):
                self._worker_failed(w, "worker pipe closed unexpectedly")

    # -- supervision ---------------------------------------------------------

    def _worker_failed(self, w: _Worker, reason: str) -> None:
        """A worker died or its pipe broke: relaunch it and replay its
        deterministic stream, or raise a forensic HostError when the
        restart budget is exhausted (or the worker cannot be replayed)."""
        w.death_reason = reason
        if w.conn is not None:
            try:
                w.conn.close()
            except OSError:
                pass
            w.conn = None
        exitcode = None
        if w.process is not None:
            try:
                w.process.join(timeout=2.0)
                exitcode = w.process.exitcode
            except (OSError, ValueError, AssertionError):
                pass
        if w.exit_seen or (w.proc is not None
                           and w.proc.state == ProcState.DONE):
            # the full stream was already delivered: a closed pipe after
            # the exit message is a normal shutdown, not a failure
            w.alive = False
            return
        if not w.restartable or w.restarts >= self.max_worker_restarts:
            w.alive = False
            raise HostError(self._forensic(w, reason, exitcode),
                            report=self._forensic_report(w, reason, exitcode))
        w.restarts += 1
        self.stats.counter("worker_restarts").add(key=w.spec.name)
        _time.sleep(min(self.worker_backoff * (2 ** (w.restarts - 1)), 2.0))
        # everything queued but not consumed will be re-streamed; replay
        # skips exactly the consumed prefix
        w.queue.clear()
        w.skip = w.consumed
        w.streamed = 0
        w.reply_cursor = 0
        w.alive = True
        self._launch(w)

    def _forensic_report(self, w: _Worker, reason: str,
                         exitcode: Optional[int]) -> dict:
        """Worker post-mortem as JSON-plain data (``last_messages`` are
        raw pipe tuples, so the whole payload goes through
        :func:`to_jsonable`); control-plane job records embed it with
        ``json.dumps``."""
        p = w.proc
        return to_jsonable({
            "worker": w.spec.name,
            "reason": reason,
            "host_pid": w.process.pid if w.process is not None else None,
            "exitcode": exitcode,
            "restarts": w.restarts,
            "max_restarts": self.max_worker_restarts,
            "restartable": w.restartable,
            "messages_consumed": w.consumed,
            "messages_streamed": w.streamed,
            "pending_queue": len(w.queue),
            "last_messages": list(w.last_msgs),
            "sim_pid": p.pid if p is not None else None,
            "sim_state": p.state.name if p is not None else None,
            "sim_vtime": p.vtime if p is not None else None,
            "now": self.gsched.now,
        })

    def _forensic(self, w: _Worker, reason: str,
                  exitcode: Optional[int] = None) -> str:
        r = self._forensic_report(w, reason, exitcode)
        lines = [f"worker {r['worker']!r} failed after "
                 f"{r['restarts']}/{r['max_restarts']} restarts: {reason}",
                 "forensic report:"]
        for key in ("host_pid", "exitcode", "restartable",
                    "messages_consumed", "messages_streamed",
                    "pending_queue", "sim_pid", "sim_state", "sim_vtime",
                    "now", "last_messages"):
            lines.append(f"  {key}: {r[key]}")
        return "\n".join(lines)

    # -- stepping override -----------------------------------------------------

    def _step(self, proc: SimProcess) -> None:
        super()._step(proc)
        # a proxy that yielded COMPUTING parks with no port event; the
        # harvest loop re-steps it when its queue refills
        e = proc.port_event
        if e is not None and e.arg is COMPUTING:
            proc.port_event = None

    # -- the run loop with the safety condition ---------------------------------

    def _unsafe_workers(self, horizon: int, pid: int) -> List[_Worker]:
        """Workers that might still produce an event ordered before
        (horizon, pid): computing, alive, with an empty queue, and a virtual
        time at or before the horizon."""
        out = []
        for w in self._workers.values():
            p = w.proc
            if (w.alive and p is not None and p.state == ProcState.RUNNING
                    and p.port_event is None and not w.queue
                    and not p.kernel_mode and p.reply is None):
                lb = p.vtime + p.clock.pending
                if lb < horizon or (lb == horizon and p.pid < pid):
                    out.append(w)
        return out

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> StatsRegistry:
        """Conservative parallel run loop."""
        import time as _wall
        if not self._timer_started:
            self.timer.start()
            self._timer_started = True
        ck = self._ckpt
        if ck is not None:
            ck.on_run_begin(self, until, max_events)
        sam = self._sampler
        t0 = _wall.perf_counter()
        budget = max_events if max_events is not None else (1 << 62)
        # lease-window caps for this run: windows must not reach past the
        # run bound, and bounded-event stepping needs the strict stream
        self._run_until = self._max_cycles + 1
        if until is not None and until + 1 < self._run_until:
            self._run_until = until + 1
        self._run_budget_capped = max_events is not None
        since_harvest = 0
        wd_rounds = 0
        wd_time = -1
        wd_limit = self._watchdog_rounds
        while budget > 0:
            if self._pretimed:
                # events timed worker-side under a lease still count
                # against the caller's event budget
                budget -= self._pretimed
                self._pretimed = 0
            if self._live <= 0:
                break
            if ck is not None and ck.on_loop_top(self):
                # replay stop: skip finalisation, same as Engine.run
                return self.stats
            if sam is not None:
                sam.on_loop_top(self)
            now = self.gsched.now
            if now != wd_time:
                wd_time = now
                wd_rounds = 0
            else:
                wd_rounds += 1
                if wd_rounds > wd_limit:
                    self._report_deadlock(
                        self.comm.live_processes(),
                        reason=f"watchdog: global time stuck at cycle {now} "
                               f"for {wd_rounds} scheduler rounds (livelock)")
            # pipes only need draining when a worker is starved (the unsafe
            # check below catches the ones that matter for ordering) or
            # periodically to keep OS pipe buffers from filling
            since_harvest += 1
            if since_harvest >= 512:
                since_harvest = 0
                self._harvest()
            t_task = self.gsched.next_time()
            cand = self.comm.select()
            if cand is None and t_task is None:
                self._harvest()
                if self.comm.select() is not None:
                    continue
                waiters = self._unsafe_workers(1 << 62, 1 << 30)
                if not waiters:
                    self._report_deadlock(self.comm.live_processes())
                self._harvest(block_on=waiters)
                continue
            horizon = cand.port_event.time if cand is not None else t_task
            pid = cand.pid if cand is not None else (1 << 30)
            if t_task is not None and (cand is None or t_task <= horizon):
                horizon, pid = t_task, -1
            unsafe = self._unsafe_workers(horizon, pid)
            if unsafe:
                self._harvest(block_on=unsafe)
                continue
            if cand is None or (t_task is not None
                                and t_task <= cand.port_event.time):
                if until is not None and t_task > until:
                    break
                task = self.gsched.pop_due(t_task)
                self.gsched.run_task(task)
                if (cand is None
                        and self.comm.next_event_time() is None
                        and not self._unsafe_workers(1 << 62, 1 << 30)
                        and self.gsched.now - self._last_progress
                        > self._deadlock_window):
                    live = self.comm.live_processes()
                    if not any(p.state == ProcState.BLOCKED for p in live):
                        self._report_deadlock(live)
                    self._last_progress = self.gsched.now
                continue
            if until is not None and cand.port_event.time > until:
                break
            event = cand.port_event
            cand.port_event = None
            self.gsched.advance_to(event.time)
            self.events_processed += 1
            self._last_progress = event.time
            budget -= 1
            self._handle_event(cand, event)
        self.timer.stop()
        self.stats.end_cycle = self.gsched.now
        self.stats.host_seconds += _wall.perf_counter() - t0
        self._account_trailing_idle()
        return self.stats

    # -- cleanup ------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate worker processes and restore CPU affinity
        (idempotent)."""
        if self._affinity is not None:
            try:
                os.sched_setaffinity(0, os.sched_getaffinity(os.getppid()))
            except (OSError, AttributeError):
                try:
                    import multiprocessing as _mp
                    os.sched_setaffinity(
                        0, set(range(_mp.cpu_count())))
                except OSError:
                    pass
            self._affinity = None
        for w in self._workers.values():
            p = w.process
            if p is not None:
                # tolerate workers that already died, were killed by the
                # supervisor, or were never successfully started
                try:
                    if p.is_alive():
                        p.terminate()
                except (OSError, ValueError):
                    pass
            if w.conn is not None:
                try:
                    w.conn.close()
                except OSError:
                    pass
                w.conn = None
        for w in self._workers.values():
            p = w.process
            if p is None:
                continue
            try:
                p.join(timeout=2)
                if p.is_alive():
                    p.kill()
                    p.join(timeout=1)
            except (OSError, ValueError, AssertionError):
                pass

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
