"""Host-parallel execution (paper §1 / Table 3).

"On an SMP system, however, the backend process and a frontend process can
run on two different processors, and sending an event from the frontend to
the backend will not cause a context switch. This significantly reduces the
simulation overhead."

:class:`~repro.host.parallel.ParallelEngine` runs ISA-interpreter frontends
as real OS processes: each worker interprets its program ahead of the
backend, streaming memory events through a pipe (fire-and-forget — replies
only matter for control events), while the backend consumes the queues in
conservative global-time order. Simulated results are identical to inline
mode; only host wall-clock changes.
"""

from .parallel import ParallelEngine, WorkerSpec

__all__ = ["ParallelEngine", "WorkerSpec"]
