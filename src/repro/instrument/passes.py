"""Instrumentation passes over ISA programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from ..core.errors import InstrumentationError
from ..isa.instructions import Instr, MEM_OPS, Op
from ..isa.program import BasicBlock, Program
from ..isa.timing import block_cost


@dataclass(frozen=True)
class InstrumentationReport:
    """Static summary of an instrumented program."""

    name: str
    n_blocks: int
    n_instrs: int
    n_mem_sites: int
    n_sync_sites: int
    n_oscall_sites: int
    static_cycles: int
    #: the paper notes instrumentation grows binaries significantly; this is
    #: the inserted-code estimate (one timing update per block, one event
    #: fill per memory reference)
    inserted_instrs: int

    @property
    def size_growth(self) -> float:
        """Estimated binary growth factor from instrumentation."""
        return (self.n_instrs + self.inserted_instrs) / max(1, self.n_instrs)


#: instructions the event-fill insert costs (store type/addr/size/cycle + call)
_EVENT_FILL_COST = 6
#: instructions the per-block timing update costs (load, add, store)
_TIMING_UPDATE_COST = 3


def report(program: Program) -> InstrumentationReport:
    """Analyse an (already resolved) program."""
    mem = sync = osc = 0
    for blk in program.blocks:
        for ins in blk.instrs:
            if ins.op in MEM_OPS:
                mem += 1
            elif ins.op in (Op.LOCK, Op.UNLOCK, Op.BARRIER):
                sync += 1
            elif ins.op == Op.SYSCALL:
                osc += 1
    inserted = (len(program.blocks) * _TIMING_UPDATE_COST
                + (mem + sync + osc) * _EVENT_FILL_COST)
    return InstrumentationReport(
        name=program.name,
        n_blocks=len(program.blocks),
        n_instrs=program.n_instrs,
        n_mem_sites=mem,
        n_sync_sites=sync,
        n_oscall_sites=osc,
        static_cycles=sum(b.cost for b in program.blocks),
        inserted_instrs=inserted,
    )


def instrument_program(program: Program) -> Program:
    """(Re)compute the per-block timing annotations — the pass that inserts
    "special assembly code at end of each basic block" (§2). Idempotent."""
    for blk in program.blocks:
        blk.cost = block_cost(blk.instrs)
    return program


def exclude_regions(program: Program, labels: Iterable[str]) -> Program:
    """Wrap each named block in SIMOFF/SIMON — the Simulation ON/OFF switch
    "inserted anywhere in the application code to selectively disable
    instrumentation of uninteresting parts" (§5).

    The switch brackets exactly the named blocks; control transfers out of
    an excluded block re-enable simulation at the next instrumented block.
    """
    labelset: Set[str] = set(labels)
    missing = labelset - set(program.labels)
    if missing:
        raise InstrumentationError(
            f"exclude_regions: unknown labels {sorted(missing)}"
        )
    for name in labelset:
        blk = program.block_of(name)
        blk.instrs.insert(0, Instr(Op.SIMOFF))
        # re-enable before any control transfer leaves the block
        term = blk.terminator()
        if term is not None:
            blk.instrs.insert(len(blk.instrs) - 1, Instr(Op.SIMON))
        else:
            blk.instrs.append(Instr(Op.SIMON))
        blk.cost = block_cost(blk.instrs)
    return program


def rename_oscalls(program: Program, mapping: Dict[str, str]) -> Program:
    """Rewrite OS-call names — §4 step 3: "rename OS calls that can cause
    deadlocks and supply a stub library for those OS calls"."""
    for blk in program.blocks:
        for ins in blk.instrs:
            if ins.op == Op.SYSCALL and ins.a in mapping:
                ins.a = mapping[ins.a]
    return program
