"""The instrumentor (paper §2 and §4).

COMPASS builds frontends by running application assembly through an
instrumentation program that inserts timing updates at basic-block ends and
event generation at memory references, replaces OS calls with COMPASS stubs,
and supports a Simulation ON/OFF switch plus per-region event suppression
(signal handlers, static constructors).

For ISA programs the timing/event insertion is performed by
:func:`instrument_program`; region exclusion wraps blocks in SIMOFF/SIMON;
:func:`rename_oscalls` is the §4 step-3 stub renaming. :func:`report` gives
the static instrumentation summary (what the paper's binary-size-growth
discussion is about).
"""

from .passes import (InstrumentationReport, exclude_regions,
                     instrument_program, rename_oscalls, report)

__all__ = [
    "InstrumentationReport",
    "instrument_program",
    "exclude_regions",
    "rename_oscalls",
    "report",
]
