"""Collect / verify / install the plain-data engine snapshot.

``collect_snapshot`` gathers every component's ``state_dict()``.
``verify_snapshot`` compares a snapshot against the state a replay
rebuilt: components the replay reconstructs live (scheduler, communicator,
sync managers, devices, OS server, stats) must match exactly; the memory
hierarchy and the fault injector are *not* compared — replay answers from
the log without touching them — and are instead installed authoritatively
by ``install_snapshot``.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.errors import ReplayDivergence

#: components replay does not rebuild: installed from the snapshot, never
#: compared against the replayed run
_INSTALL_ONLY = ("memsys", "faults", "sampler")


def collect_snapshot(engine) -> Dict[str, Any]:
    """Plain-data snapshot of one engine (checkpoint payload)."""
    return {
        "memsys": engine.memsys.state_dict(),
        "stats": engine.stats.state_dict(),
        "faults": engine.faults.state_dict(),
        "gsched": engine.gsched.state_dict(),
        "comm": engine.comm.state_dict(),
        "locks": engine.locks.state_dict(),
        "barriers": engine.barriers.state_dict(),
        "procsched": engine.procsched.state_dict(),
        "intctl": engine.intctl.state_dict(),
        "timer": engine.timer.state_dict(),
        "disk": engine.disk.state_dict(),
        "nic": engine.nic.state_dict(),
        "os_server": engine.os_server.state_dict(),
        # the sampling controller stands down during replay, so its window
        # schedule position is install-only state, like the memory system
        "sampler": (engine._sampler.state_dict()
                    if engine._sampler is not None else None),
        "events_processed": engine.events_processed,
        "batch_stats": dict(engine.batch_stats),
        "mmap_cursor": dict(engine._mmap_cursor),
        "live": engine._live,
        "last_progress": engine._last_progress,
        "recent_events": list(engine._recent_events),
    }


def _masked_stats(state: Dict[str, Any]) -> Dict[str, Any]:
    """Stats comparison mask: wall-clock time can never match, and the
    injector's counters are bookkept only on the recording side."""
    out = dict(state)
    out["host_seconds"] = 0.0
    counters = dict(out["counters"])
    counters.pop("faults_injected", None)
    counters.pop("worker_restarts", None)
    out["counters"] = counters
    return out


def verify_snapshot(engine, snapshot: Dict[str, Any]) -> None:
    """Raise :class:`ReplayDivergence` if the replay-rebuilt live state
    disagrees with ``snapshot`` on any compared component."""
    rebuilt = collect_snapshot(engine)
    for key, have in rebuilt.items():
        if key in _INSTALL_ONLY:
            continue
        want = snapshot[key]
        if key == "stats":
            have, want = _masked_stats(have), _masked_stats(want)
        if have != want:
            raise ReplayDivergence(
                f"replay fast-forward diverged from the recorded run in "
                f"{key!r} (rebuilt state != checkpoint snapshot)")


def install_snapshot(engine, snapshot: Dict[str, Any]) -> None:
    """Install the authoritative snapshot for the replay-skipped
    components (memory hierarchy, stats, fault injector)."""
    engine.memsys.load_state(snapshot["memsys"])
    engine.stats.load_state(snapshot["stats"])
    engine.faults.load_state(snapshot["faults"])
    if (snapshot.get("sampler") is not None
            and engine._sampler is not None):
        engine._sampler.load_state(snapshot["sampler"])
