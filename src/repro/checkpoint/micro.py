"""Micro-checkpoints: per-CPU incremental snapshots for speculative windows.

A full :class:`~repro.checkpoint.CheckpointManager` snapshot serialises the
whole backend — far too heavy to take once per speculation window. But a
speculative window is *confined by construction*: every reference consumed
past the rival horizon must resolve on the L1 fast path (`access_run` cuts
the first slow reference at or beyond the horizon unconsumed), and a fast
path hit mutates only

* the issuing CPU's L1 line-state dict (EXCLUSIVE -> MODIFIED flips) and
  per-set LRU orders (plus the same flips mirrored into its inclusive L2),
* the commutative hit/access counters (``Cache.hits``, ``accesses``,
  ``fast_hits``, the vec-path observability counters),
* the global clock's high-water mark (``gsched.now``).

:class:`MicroCheckpoint` snapshots exactly that slice — O(L1 lines) dict and
list copies, no pickling — before a window opens, and restores it in place
on a horizon violation. Restoring bumps ``Cache.version`` so the vectorized
mirror and every version-keyed memo (rival invisibility frontiers,
classification caches) drop their now-stale entries.

:class:`SpecOverlay` is the worker-process counterpart used by
``host/parallel._drain_lease``: the worker's lease mirror is already a
throwaway copy, so instead of snapshotting it the overlay *redirects* the
speculative tail's mutations (copy-on-touch LRU lists, an E->M flip
overlay) and buffers the tail's raw references. Rollback is then simply
dropping the overlay and re-streaming the buffered references as ordinary
fire-and-forget events; commit ships the overlay as the second half of the
``"pr"`` fold.
"""

from __future__ import annotations

__all__ = ["MicroCheckpoint", "SpecOverlay"]


class MicroCheckpoint:
    """Snapshot/rollback of one CPU's speculation-visible state slice."""

    __slots__ = ("ms", "cpu", "clock", "_states", "_sets", "_l2", "_hits",
                 "_accesses", "_fast_hits", "_vecc", "_now")

    def __init__(self, ms, cpu: int, clock) -> None:
        self.ms = ms
        self.cpu = cpu
        self.clock = clock
        self._states = dict(ms._l1_states[cpu])
        self._sets = [list(s) for s in ms._l1_sets[cpu]]
        l2s = ms._l2_states[cpu] if ms._l2_states is not None else None
        self._l2 = dict(l2s) if l2s is not None else None
        self._hits = ms.l1s[cpu].hits
        self._accesses = ms.accesses
        self._fast_hits = ms.fast_hits
        self._vecc = (ms.vec_batches, ms.vec_refs, ms.vec_fallbacks,
                      ms.vec_rebuilds)
        self._now = clock.now

    def rollback(self) -> None:
        """Restore the captured slice in place.

        In-place restoration matters: the hot loops hold direct references
        to the state dict and the per-set lists (``_l1_states``/``_l1_sets``
        aliases, bound ``.get`` methods), so containers must keep their
        identity. The version bump invalidates the vec mirror and any
        version-keyed caches built against the speculated state.
        """
        ms = self.ms
        cpu = self.cpu
        states = ms._l1_states[cpu]
        states.clear()
        states.update(self._states)
        for dst, src in zip(ms._l1_sets[cpu], self._sets):
            dst[:] = src
        if self._l2 is not None:
            l2s = ms._l2_states[cpu]
            l2s.clear()
            l2s.update(self._l2)
        l1 = ms.l1s[cpu]
        l1.hits = self._hits
        ms.accesses = self._accesses
        ms.fast_hits = self._fast_hits
        (ms.vec_batches, ms.vec_refs, ms.vec_fallbacks,
         ms.vec_rebuilds) = self._vecc
        # the clock only ever moved forward inside the window and nothing
        # else observed it (no tasks ran, no events were delivered), so it
        # is safe to move it back to the capture point
        self.clock.now = self._now
        l1.version += 1
        if ms._vec is not None:
            ms._vec.on_rollback(cpu)


class SpecOverlay:
    """Worker-side undo log for a speculative lease tail.

    Reads go through the overlay (falling back to the committed mirror);
    writes land only in the overlay. ``refs`` buffers each speculated
    reference ``(kind, addr, size, delta)`` so a rollback can re-stream
    them for authoritative timing.
    """

    __slots__ = ("states", "sets", "refs", "n_mem", "n_adv", "n_lines",
                 "last_issue")

    def __init__(self) -> None:
        #: line -> speculated state (E->M flips only; lines never move)
        self.states: dict = {}
        #: set index -> private copy of the LRU list (copy-on-touch)
        self.sets: dict = {}
        #: buffered tail references, in stream order
        self.refs: list = []
        self.n_mem = 0
        self.n_adv = 0
        self.n_lines = 0
        self.last_issue = 0

    def set_list(self, idx: int, base_sets: list) -> list:
        """The private LRU list for ``idx``, copied from the committed
        mirror on first touch."""
        s = self.sets.get(idx)
        if s is None:
            s = list(base_sets[idx])
            self.sets[idx] = s
        return s

    def payload(self, advance: int) -> tuple:
        """The speculative half of the ``"pr"`` message."""
        return (self.n_mem, self.n_adv, self.n_lines, advance,
                self.last_issue, self.sets, sorted(self.states))
