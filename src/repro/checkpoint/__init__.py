"""Deterministic checkpoint/restore for long commercial runs.

COMPASS frontends are generator coroutines — unpicklable by design — so a
checkpoint cannot serialise the simulation directly. Instead it stores:

* a config/workload fingerprint (to refuse resuming a different setup),
* a versioned plain-data snapshot of every backend component
  (``state_dict()`` on caches, coherence protocol, page tables, devices,
  OS state, stats, fault injector),
* the compact per-process **reply log**: the latency the backend answered
  to every memory reference since cycle 0, plus the per-site outcomes of
  every fault-injection check.

Restore rebuilds the workload coroutines by re-running the builder, then
**fast-forwards** by replaying the run segments with every memory access
answered from the log — no cache walks, no coherence traffic, no RNG
draws — which regrows all unpicklable structure (generator frames, wait
tokens, scheduled closures) bit-identically. The rebuilt state is verified
against the snapshot before the authoritative snapshot is installed and
recording resumes, so a resumed run continues exactly where the saved run
left off.
"""

from .log import RecordingMemory, ReplayMemory
from .manager import (CheckpointManager, checkpoint_exists, generation_paths,
                      load_checkpoint, quarantine_checkpoint, resume,
                      write_checkpoint_file)
from .micro import MicroCheckpoint, SpecOverlay
from .snapshot import collect_snapshot, install_snapshot, verify_snapshot

__all__ = [
    "CheckpointManager",
    "checkpoint_exists",
    "generation_paths",
    "quarantine_checkpoint",
    "write_checkpoint_file",
    "MicroCheckpoint",
    "SpecOverlay",
    "RecordingMemory",
    "ReplayMemory",
    "collect_snapshot",
    "install_snapshot",
    "verify_snapshot",
    "load_checkpoint",
    "resume",
]
