"""Memory-system wrappers: record backend replies, or replay them.

The engine reaches the memory system only through ``engine.memsys``, so a
delegating wrapper captures (or substitutes) the full reply stream without
touching the hierarchy itself. Both wrappers run the *tapped* per-reference
loop for batched runs — already proven bit-identical to the inlined hot
loop by the fast-path equivalence tests — so recording changes no timing.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import ReplayDivergence

#: reply-log sentinel for "this access raised a major fault"
MAJOR_FAULT = -1


class _MemoryWrapper:
    """Delegates everything to the real MemorySystem except the two access
    entry points, which subclasses intercept."""

    def __init__(self, real, replies: Dict[int, List[int]]) -> None:
        self.real = real
        self.replies = replies

    def __getattr__(self, name):
        return getattr(self.real, name)

    def access_run(self, pid: int, cpu: int, kinds: list, addrs: list,
                   sizes: list, pends: list, i: int, n: int, t: int,
                   limit: int, horizon: int, ext: int = 0, clock=None,
                   serial=None, uhint=None):
        # mirror of MemorySystem.access_run's tapped branch: identical
        # issue-time arithmetic and cut conditions, one access() per
        # reference so the wrapper sees the full stream. The lookahead
        # extension (``ext``) is deliberately ignored, exactly like the
        # tapped branch: record and replay must both observe the strict
        # interleaving so the reply log lines up deterministically.
        access = self.access
        consumed = 0
        added = 0
        while True:
            k = kinds[i]
            if clock is not None and t > clock.now:
                clock.now = t
            lat, major = access(pid, addrs[i], sizes[i], k != 0, cpu,
                                t, atomic=(k == 2))
            consumed += 1
            if major is not None:
                return consumed, i, t, added, major, 0
            added += lat
            t += lat
            i += 1
            if i >= n or consumed >= limit:
                return consumed, i, t, added, None, 0
            nt = t + pends[i]
            if nt >= horizon:
                return consumed, i, t, added, None, 0
            t = nt


class RecordingMemory(_MemoryWrapper):
    """Pass every access through and append its reply to the per-pid log."""

    def access(self, pid, vaddr, size, write, cpu, now, atomic=False):
        lat, major = self.real.access(pid, vaddr, size, write, cpu, now,
                                      atomic=atomic)
        log = self.replies.get(pid)
        if log is None:
            log = self.replies[pid] = []
        log.append(MAJOR_FAULT if major is not None else lat)
        return lat, major


class ReplayMemory(_MemoryWrapper):
    """Answer every access from the log; the hierarchy is never touched.

    A :data:`MAJOR_FAULT` entry reconstructs the fault by asking the live
    VMM to translate the access's own address — valid because ``access``
    translates exactly once per reference, and the file-backed mapping
    state the decision depends on is maintained live by the replayed
    mmap/page-install path.
    """

    def __init__(self, real, replies: Dict[int, List[int]]) -> None:
        super().__init__(real, replies)
        self.cursors: Dict[int, int] = {}

    def access(self, pid, vaddr, size, write, cpu, now, atomic=False):
        log = self.replies.get(pid)
        c = self.cursors.get(pid, 0)
        if log is None or c >= len(log):
            raise ReplayDivergence(
                f"pid {pid} issued more memory accesses than recorded "
                f"({c} replies in the log)")
        self.cursors[pid] = c + 1
        lat = log[c]
        if lat == MAJOR_FAULT:
            _, major, _ = self.real.vmm.translate(pid, vaddr, write, cpu)
            if major is None:
                raise ReplayDivergence(
                    f"recorded major fault for pid {pid} at {vaddr:#x} "
                    "did not reproduce during replay")
            return 0, major
        return lat, None

    def check_exhausted(self) -> None:
        """Every recorded reply must have been consumed at the stop point."""
        for pid, log in self.replies.items():
            c = self.cursors.get(pid, 0)
            if c != len(log):
                raise ReplayDivergence(
                    f"pid {pid} consumed {c} of {len(log)} recorded "
                    "replies: replay stopped short of the checkpoint")
