"""The checkpoint manager: autosave, crash simulation, and restore.

One manager is attached per engine when ``SimConfig.checkpoint_interval``
is set. In **record** mode it logs every backend reply (via
:class:`~repro.checkpoint.log.RecordingMemory` and the fault injector's
outcome FIFO), tracks the ``run()`` segments the caller issues, and
autosaves an atomic pickle every ``interval`` processed events. In
**replay** mode (during :meth:`CheckpointManager.restore`) it re-drives
the recorded segments against the reply log and stops each one exactly at
its recorded event count — bypassing ``run()``'s finalisation so the
pending timer tick survives — then verifies and installs the snapshot and
switches back to record mode, live.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import (CheckpointCorruptError, CheckpointError,
                           ReplayDivergence, SimulatedCrash)
from ..core.framing import (fsync_dir, fsync_file, read_frame,
                            sweep_stale_tmp, write_frame)
from ..core.frontend import SimProcess
from ..faults import crashpoints
from .log import RecordingMemory, ReplayMemory
from .snapshot import collect_snapshot, install_snapshot, verify_snapshot

#: checkpoint file format version (bump on incompatible layout changes);
#: v2 is the framed format: magic + CRC32-framed JSON header + CRC32-
#: framed pickle payload, written fsync-before-rename
FORMAT_VERSION = 2

#: 4-byte file magic opening every v2 checkpoint
MAGIC = b"CMPK"

#: autosave generations rotated under the default path (`.g0`/`.g1`)
GENERATIONS = 2


def _worker_fingerprint(engine) -> Optional[Dict[int, Tuple[str, int]]]:
    """Parallel-mode workload identity: worker name + program-text CRC."""
    workers = getattr(engine, "_workers", None)
    if not workers:
        return None
    return {pid: (w.spec.name, zlib.crc32(w.spec.program_text.encode()))
            for pid, w in workers.items()}


class CheckpointManager:
    """Record/replay controller for one engine."""

    def __init__(self, engine, path: str, interval: int) -> None:
        if interval <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self.engine = engine
        self.path = path
        self.interval = int(interval)
        self.mode = "record"
        #: per-pid backend replies since cycle 0 (grows across resumes)
        self.replies: Dict[int, List[int]] = {}
        #: per-site fault-injection outcomes since cycle 0
        self.fault_log: Dict[str, List[int]] = {}
        #: every run() call: bounds + event counter at entry; the copy
        #: stored in a checkpoint pins ``stop_events`` on the last segment
        self.segments: List[Dict[str, Any]] = []
        #: SimProcess pid counter before any workload spawns — restored
        #: ahead of the builder on resume so pids reproduce
        self.pid_base = SimProcess.pid_counter()
        #: lifetime autosaves (survives resume); this-process autosaves
        self.saves = 0
        self.session_saves = 0
        #: testing/CI knob: raise SimulatedCrash after the Nth autosave of
        #: this process — a deterministic stand-in for kill -9
        self.crash_after_saves: Optional[int] = None
        self.workload_fp: Optional[Dict[int, str]] = None
        self.worker_fp: Optional[Dict[int, Tuple[str, int]]] = None
        self._next_save = self.interval
        self._replay_idx = -1
        # a writer that died mid-save leaves <target>.tmp behind; sweep
        # our own base name so stale temps never accumulate
        sweep_stale_tmp(os.path.dirname(path) or ".", os.path.basename(path))
        engine.memsys = RecordingMemory(engine.memsys, self.replies)
        engine.faults.begin_recording(self.fault_log)

    # -- engine hooks ------------------------------------------------------

    def on_run_begin(self, engine, until: Optional[int],
                     max_events: Optional[int]) -> None:
        """Called at every ``run()`` entry."""
        if self.workload_fp is None:
            # the initial process set is the workload identity (mid-run
            # forks are products of the run, not part of the fingerprint)
            self.workload_fp = {p.pid: p.name
                                for p in engine.comm.processes.values()}
            self.worker_fp = _worker_fingerprint(engine)
        if self.mode == "record":
            self.segments.append({"until": until, "max_events": max_events,
                                  "events_at_start": engine.events_processed,
                                  "stop_events": None})

    def on_loop_top(self, engine) -> bool:
        """Called at the top of every scheduler round while live processes
        remain. Returns True when the run loop must stop *without*
        finalising (replay reached the checkpoint's event count)."""
        if self.mode == "replay":
            stop = self.segments[self._replay_idx]["stop_events"]
            return stop is not None and engine.events_processed >= stop
        if engine.events_processed >= self._next_save:
            while self._next_save <= engine.events_processed:
                self._next_save += self.interval
            self.save()
        return False

    # -- saving ------------------------------------------------------------

    def save(self, path: str = None) -> str:
        """Write an atomic, framed, generation-rotated checkpoint.

        Default autosaves alternate between ``<path>.g0`` and
        ``<path>.g1`` so a save torn by a crash (or a later bit flip in
        the newest file) still leaves the previous generation loadable.
        An explicit ``path`` — the sampling controller's per-window
        ``.w<N>`` snapshots — writes that single file, no rotation.

        Durability discipline: payload + header are CRC32-framed, the
        tmp file is fsynced *before* ``os.replace``, and the directory
        is fsynced after, so the rename is itself durable. Crash points
        ``ckpt:pre-rename`` / ``ckpt:post-rename`` / ``ckpt:post-fsync``
        bracket those steps for the recovery test harness."""
        engine = self.engine
        segments = [dict(s) for s in self.segments]
        if not segments:
            raise CheckpointError("nothing to save: run() was never entered")
        segments[-1]["stop_events"] = engine.events_processed
        ckpt = {
            "version": FORMAT_VERSION,
            "config_fp": repr(engine.cfg),
            "workload_fp": self.workload_fp,
            "worker_fp": self.worker_fp,
            "pid_base": self.pid_base,
            "events_processed": engine.events_processed,
            "saves": self.saves + 1,
            "replies": self.replies,
            "fault_log": self.fault_log,
            "segments": segments,
            "snapshot": collect_snapshot(engine),
        }
        if path is not None:
            target = path
        else:
            target = f"{self.path}.g{self.saves % GENERATIONS}"
        write_checkpoint_file(target, ckpt)
        self.saves += 1
        self.session_saves += 1
        if (self.crash_after_saves is not None
                and self.session_saves >= self.crash_after_saves):
            raise SimulatedCrash(
                f"simulated host crash after autosave #{self.saves} "
                f"(cycle {engine.gsched.now}, "
                f"{engine.events_processed} events)")
        return target

    # -- restoring ---------------------------------------------------------

    def restore(self, ckpt: Dict[str, Any]) -> None:
        """Fast-forward this (freshly built) engine to the checkpoint."""
        engine = self.engine
        if ckpt.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {ckpt.get('version')!r} != "
                f"{FORMAT_VERSION}")
        if ckpt["config_fp"] != repr(engine.cfg):
            raise CheckpointError(
                "configuration fingerprint mismatch: the engine was built "
                "with a different SimConfig than the checkpointed run")
        live_fp = {p.pid: p.name for p in engine.comm.processes.values()}
        if live_fp != ckpt["workload_fp"]:
            raise CheckpointError(
                f"workload fingerprint mismatch: checkpoint recorded "
                f"{ckpt['workload_fp']}, builder spawned {live_fp}")
        live_wfp = _worker_fingerprint(engine)
        if live_wfp != ckpt["worker_fp"]:
            raise CheckpointError(
                "parallel worker fingerprint mismatch: worker specs differ "
                "from the checkpointed run")
        self.workload_fp = ckpt["workload_fp"]
        self.worker_fp = ckpt["worker_fp"]
        # adopt the recorded history; these same containers keep growing
        # once recording resumes, so later checkpoints stay complete
        self.replies.clear()
        self.replies.update(ckpt["replies"])
        self.fault_log.clear()
        self.fault_log.update(ckpt["fault_log"])
        self.segments = [dict(s) for s in ckpt["segments"]]
        self.saves = ckpt["saves"]
        self._next_save = ckpt["events_processed"] + self.interval

        real = engine.memsys.real
        replay = ReplayMemory(real, self.replies)
        engine.memsys = replay
        engine.faults.begin_replay(self.fault_log)
        self.mode = "replay"
        try:
            for idx, seg in enumerate(self.segments):
                self._replay_idx = idx
                engine.run(seg["until"], seg["max_events"])
                stop = seg["stop_events"]
                if (stop is not None
                        and engine.events_processed != stop):
                    raise ReplayDivergence(
                        f"segment {idx} replayed to event "
                        f"{engine.events_processed}, checkpoint stopped "
                        f"at {stop}")
            if engine.events_processed != ckpt["events_processed"]:
                raise ReplayDivergence(
                    f"replay processed {engine.events_processed} events, "
                    f"checkpoint recorded {ckpt['events_processed']}")
            replay.check_exhausted()
            verify_snapshot(engine, ckpt["snapshot"])
        finally:
            self._replay_idx = -1
        install_snapshot(engine, ckpt["snapshot"])
        # switch live: record onto the same history from here on
        engine.memsys = RecordingMemory(real, self.replies)
        engine.faults.begin_recording(self.fault_log)
        self.mode = "record"

    def finish(self, engine=None):
        """Run the remainder of the interrupted segment (the portion the
        crash cut off) with its original bounds; returns the stats."""
        engine = engine if engine is not None else self.engine
        seg = self.segments[-1]
        stop = seg["stop_events"]
        if stop is None:
            raise CheckpointError("last segment has no recorded stop point")
        remaining = None
        if seg["max_events"] is not None:
            remaining = seg["max_events"] - (stop - seg["events_at_start"])
        return engine.run(seg["until"], remaining)


def write_checkpoint_file(target: str, ckpt: Dict[str, Any]) -> str:
    """Atomically write one framed checkpoint file (v2 format).

    Layout: ``MAGIC`` + CRC32-framed JSON header (format version + save
    counter, readable without unpickling) + CRC32-framed pickle payload.
    """
    payload = pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps({"format": FORMAT_VERSION,
                         "saves": ckpt.get("saves", 0),
                         "events": ckpt.get("events_processed", 0)}).encode()
    tmp = target + ".tmp"
    with open(tmp, "wb") as f:
        f.write(MAGIC)
        write_frame(f, header)
        write_frame(f, payload)
        fsync_file(f)
    crashpoints.hit("ckpt:pre-rename")
    os.replace(tmp, target)
    crashpoints.hit("ckpt:post-rename")
    fsync_dir(os.path.dirname(target) or ".")
    crashpoints.hit("ckpt:post-fsync")
    return target


def _read_checkpoint_file(path: str) -> Dict[str, Any]:
    """Read + fully verify one framed checkpoint file.

    Every corruption mode — bad magic, torn/flipped frames, garbage
    pickle — raises :class:`CheckpointCorruptError` with the byte
    offset; a raw ``EOFError``/``UnpicklingError`` never escapes.
    """
    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointCorruptError(
                path, 0, f"bad magic {magic!r} (want {MAGIC!r}): not a "
                f"v{FORMAT_VERSION} checkpoint file")
        header_raw = read_frame(f, path, CheckpointCorruptError)
        if header_raw is None:
            raise CheckpointCorruptError(path, len(MAGIC),
                                         "missing header frame")
        try:
            header = json.loads(header_raw)
        except ValueError as exc:
            raise CheckpointCorruptError(
                path, len(MAGIC), f"unreadable header frame: {exc}")
        offset = f.tell()
        payload = read_frame(f, path, CheckpointCorruptError)
        if payload is None:
            raise CheckpointCorruptError(path, offset,
                                         "missing payload frame")
        try:
            ckpt = pickle.loads(payload)
        except Exception as exc:     # CRC passed but pickle refuses:
            raise CheckpointCorruptError(    # writer bug, still structured
                path, offset, f"unpicklable payload: {exc!r}")
    if not isinstance(ckpt, dict) or "version" not in ckpt:
        raise CheckpointCorruptError(path, offset,
                                     "payload is not a checkpoint dict")
    if header.get("format") != ckpt.get("version"):
        raise CheckpointCorruptError(
            path, len(MAGIC),
            f"header format {header.get('format')!r} disagrees with "
            f"payload version {ckpt.get('version')!r}")
    return ckpt


def _header_saves(path: str) -> int:
    """The save counter from a file's header frame; -1 when unreadable
    (the file then sorts oldest and is tried last)."""
    try:
        with open(path, "rb") as f:
            if f.read(len(MAGIC)) != MAGIC:
                return -1
            header_raw = read_frame(f, path, CheckpointCorruptError)
            if header_raw is None:
                return -1
            return int(json.loads(header_raw).get("saves", -1))
    except (OSError, ValueError, CheckpointCorruptError):
        return -1


def generation_paths(path: str) -> List[str]:
    """The rotation targets autosaves alternate between."""
    return [f"{path}.g{i}" for i in range(GENERATIONS)]


def checkpoint_exists(path: str) -> bool:
    """True when ``path`` (explicit file) or any of its autosave
    generations exists."""
    return (os.path.exists(path)
            or any(os.path.exists(g) for g in generation_paths(path)))


def quarantine_checkpoint(path: str, err: CheckpointCorruptError,
                          fallback: Optional[str] = None) -> Dict[str, Any]:
    """Move a corrupt checkpoint aside and drop a JSON forensic record.

    The bytes move to ``<path>.corrupt`` (never deleted — they are the
    evidence) and ``<path>.quarantine.json`` records what was wrong and
    which generation recovery fell back to. Returns the record."""
    record = {
        "quarantined": path,
        "moved_to": path + ".corrupt",
        "error": err.to_record(),
        "fallback": fallback,
    }
    try:
        os.replace(path, path + ".corrupt")
    except OSError as exc:
        record["moved_to"] = None
        record["move_error"] = repr(exc)
    with open(path + ".quarantine.json", "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
    return record


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read + verify a checkpoint (with generation fallback).

    An existing ``path`` is read as an explicit single file — strict,
    no fallback (the sampling controller's ``.w<N>`` windows). Otherwise
    the autosave generations ``<path>.g0`` / ``<path>.g1`` are tried
    newest-first (by the save counter in the framed header): a corrupt
    newer generation is quarantined (:func:`quarantine_checkpoint`) and
    the previous one is used instead of restarting from cycle zero.
    Raises :class:`CheckpointCorruptError` when every candidate is
    corrupt, ``FileNotFoundError`` when none exists.
    """
    if os.path.exists(path):
        return _read_checkpoint_file(path)
    gens = [g for g in generation_paths(path) if os.path.exists(g)]
    if not gens:
        raise FileNotFoundError(
            f"no checkpoint at {path!r} (and no .g* generations)")
    gens.sort(key=_header_saves, reverse=True)
    last_err: Optional[CheckpointCorruptError] = None
    for idx, gen in enumerate(gens):
        try:
            return _read_checkpoint_file(gen)
        except CheckpointCorruptError as exc:
            fallback = gens[idx + 1] if idx + 1 < len(gens) else None
            quarantine_checkpoint(gen, exc, fallback)
            last_err = exc
    raise last_err


def resume(path: str, build: Callable[[], Any], finish: bool = True):
    """Resume a killed/crashed run from its autosave.

    ``build`` must reconstruct the engine exactly as the original driver
    did — same SimConfig (with checkpointing enabled), same workload
    spawns — and return it without calling ``run()``. Returns
    ``(engine, stats)``; with ``finish=True`` the interrupted segment is
    run to its original bounds first.
    """
    ckpt = load_checkpoint(path)
    SimProcess.set_pid_counter(ckpt["pid_base"])
    engine = build()
    mgr = getattr(engine, "_ckpt", None)
    if mgr is None:
        raise CheckpointError(
            "the rebuilt engine has checkpointing disabled: set "
            "checkpoint_path/checkpoint_interval in its SimConfig")
    mgr.restore(ckpt)
    stats = engine.stats
    if finish:
        stats = mgr.finish(engine)
    return engine, stats
