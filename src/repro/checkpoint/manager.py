"""The checkpoint manager: autosave, crash simulation, and restore.

One manager is attached per engine when ``SimConfig.checkpoint_interval``
is set. In **record** mode it logs every backend reply (via
:class:`~repro.checkpoint.log.RecordingMemory` and the fault injector's
outcome FIFO), tracks the ``run()`` segments the caller issues, and
autosaves an atomic pickle every ``interval`` processed events. In
**replay** mode (during :meth:`CheckpointManager.restore`) it re-drives
the recorded segments against the reply log and stops each one exactly at
its recorded event count — bypassing ``run()``'s finalisation so the
pending timer tick survives — then verifies and installs the snapshot and
switches back to record mode, live.
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import CheckpointError, ReplayDivergence, SimulatedCrash
from ..core.frontend import SimProcess
from .log import RecordingMemory, ReplayMemory
from .snapshot import collect_snapshot, install_snapshot, verify_snapshot

#: checkpoint file format version (bump on incompatible layout changes)
FORMAT_VERSION = 1


def _worker_fingerprint(engine) -> Optional[Dict[int, Tuple[str, int]]]:
    """Parallel-mode workload identity: worker name + program-text CRC."""
    workers = getattr(engine, "_workers", None)
    if not workers:
        return None
    return {pid: (w.spec.name, zlib.crc32(w.spec.program_text.encode()))
            for pid, w in workers.items()}


class CheckpointManager:
    """Record/replay controller for one engine."""

    def __init__(self, engine, path: str, interval: int) -> None:
        if interval <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self.engine = engine
        self.path = path
        self.interval = int(interval)
        self.mode = "record"
        #: per-pid backend replies since cycle 0 (grows across resumes)
        self.replies: Dict[int, List[int]] = {}
        #: per-site fault-injection outcomes since cycle 0
        self.fault_log: Dict[str, List[int]] = {}
        #: every run() call: bounds + event counter at entry; the copy
        #: stored in a checkpoint pins ``stop_events`` on the last segment
        self.segments: List[Dict[str, Any]] = []
        #: SimProcess pid counter before any workload spawns — restored
        #: ahead of the builder on resume so pids reproduce
        self.pid_base = SimProcess.pid_counter()
        #: lifetime autosaves (survives resume); this-process autosaves
        self.saves = 0
        self.session_saves = 0
        #: testing/CI knob: raise SimulatedCrash after the Nth autosave of
        #: this process — a deterministic stand-in for kill -9
        self.crash_after_saves: Optional[int] = None
        self.workload_fp: Optional[Dict[int, str]] = None
        self.worker_fp: Optional[Dict[int, Tuple[str, int]]] = None
        self._next_save = self.interval
        self._replay_idx = -1
        engine.memsys = RecordingMemory(engine.memsys, self.replies)
        engine.faults.begin_recording(self.fault_log)

    # -- engine hooks ------------------------------------------------------

    def on_run_begin(self, engine, until: Optional[int],
                     max_events: Optional[int]) -> None:
        """Called at every ``run()`` entry."""
        if self.workload_fp is None:
            # the initial process set is the workload identity (mid-run
            # forks are products of the run, not part of the fingerprint)
            self.workload_fp = {p.pid: p.name
                                for p in engine.comm.processes.values()}
            self.worker_fp = _worker_fingerprint(engine)
        if self.mode == "record":
            self.segments.append({"until": until, "max_events": max_events,
                                  "events_at_start": engine.events_processed,
                                  "stop_events": None})

    def on_loop_top(self, engine) -> bool:
        """Called at the top of every scheduler round while live processes
        remain. Returns True when the run loop must stop *without*
        finalising (replay reached the checkpoint's event count)."""
        if self.mode == "replay":
            stop = self.segments[self._replay_idx]["stop_events"]
            return stop is not None and engine.events_processed >= stop
        if engine.events_processed >= self._next_save:
            while self._next_save <= engine.events_processed:
                self._next_save += self.interval
            self.save()
        return False

    # -- saving ------------------------------------------------------------

    def save(self, path: str = None) -> str:
        """Write an atomic checkpoint of the current loop-top state.

        ``path`` overrides the manager's default target — used by the
        sampling controller to drop per-window snapshots (``.w<N>``)
        without disturbing the autosave file."""
        engine = self.engine
        segments = [dict(s) for s in self.segments]
        if not segments:
            raise CheckpointError("nothing to save: run() was never entered")
        segments[-1]["stop_events"] = engine.events_processed
        ckpt = {
            "version": FORMAT_VERSION,
            "config_fp": repr(engine.cfg),
            "workload_fp": self.workload_fp,
            "worker_fp": self.worker_fp,
            "pid_base": self.pid_base,
            "events_processed": engine.events_processed,
            "saves": self.saves + 1,
            "replies": self.replies,
            "fault_log": self.fault_log,
            "segments": segments,
            "snapshot": collect_snapshot(engine),
        }
        target = path if path is not None else self.path
        tmp = target + ".tmp"
        with open(tmp, "wb") as f:
            pickle.dump(ckpt, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, target)
        self.saves += 1
        self.session_saves += 1
        if (self.crash_after_saves is not None
                and self.session_saves >= self.crash_after_saves):
            raise SimulatedCrash(
                f"simulated host crash after autosave #{self.saves} "
                f"(cycle {engine.gsched.now}, "
                f"{engine.events_processed} events)")
        return target

    # -- restoring ---------------------------------------------------------

    def restore(self, ckpt: Dict[str, Any]) -> None:
        """Fast-forward this (freshly built) engine to the checkpoint."""
        engine = self.engine
        if ckpt.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {ckpt.get('version')!r} != "
                f"{FORMAT_VERSION}")
        if ckpt["config_fp"] != repr(engine.cfg):
            raise CheckpointError(
                "configuration fingerprint mismatch: the engine was built "
                "with a different SimConfig than the checkpointed run")
        live_fp = {p.pid: p.name for p in engine.comm.processes.values()}
        if live_fp != ckpt["workload_fp"]:
            raise CheckpointError(
                f"workload fingerprint mismatch: checkpoint recorded "
                f"{ckpt['workload_fp']}, builder spawned {live_fp}")
        live_wfp = _worker_fingerprint(engine)
        if live_wfp != ckpt["worker_fp"]:
            raise CheckpointError(
                "parallel worker fingerprint mismatch: worker specs differ "
                "from the checkpointed run")
        self.workload_fp = ckpt["workload_fp"]
        self.worker_fp = ckpt["worker_fp"]
        # adopt the recorded history; these same containers keep growing
        # once recording resumes, so later checkpoints stay complete
        self.replies.clear()
        self.replies.update(ckpt["replies"])
        self.fault_log.clear()
        self.fault_log.update(ckpt["fault_log"])
        self.segments = [dict(s) for s in ckpt["segments"]]
        self.saves = ckpt["saves"]
        self._next_save = ckpt["events_processed"] + self.interval

        real = engine.memsys.real
        replay = ReplayMemory(real, self.replies)
        engine.memsys = replay
        engine.faults.begin_replay(self.fault_log)
        self.mode = "replay"
        try:
            for idx, seg in enumerate(self.segments):
                self._replay_idx = idx
                engine.run(seg["until"], seg["max_events"])
                stop = seg["stop_events"]
                if (stop is not None
                        and engine.events_processed != stop):
                    raise ReplayDivergence(
                        f"segment {idx} replayed to event "
                        f"{engine.events_processed}, checkpoint stopped "
                        f"at {stop}")
            if engine.events_processed != ckpt["events_processed"]:
                raise ReplayDivergence(
                    f"replay processed {engine.events_processed} events, "
                    f"checkpoint recorded {ckpt['events_processed']}")
            replay.check_exhausted()
            verify_snapshot(engine, ckpt["snapshot"])
        finally:
            self._replay_idx = -1
        install_snapshot(engine, ckpt["snapshot"])
        # switch live: record onto the same history from here on
        engine.memsys = RecordingMemory(real, self.replies)
        engine.faults.begin_recording(self.fault_log)
        self.mode = "record"

    def finish(self, engine=None):
        """Run the remainder of the interrupted segment (the portion the
        crash cut off) with its original bounds; returns the stats."""
        engine = engine if engine is not None else self.engine
        seg = self.segments[-1]
        stop = seg["stop_events"]
        if stop is None:
            raise CheckpointError("last segment has no recorded stop point")
        remaining = None
        if seg["max_events"] is not None:
            remaining = seg["max_events"] - (stop - seg["events_at_start"])
        return engine.run(seg["until"], remaining)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a checkpoint file (no side effects)."""
    with open(path, "rb") as f:
        ckpt = pickle.load(f)
    if not isinstance(ckpt, dict) or "version" not in ckpt:
        raise CheckpointError(f"{path!r} is not a checkpoint file")
    return ckpt


def resume(path: str, build: Callable[[], Any], finish: bool = True):
    """Resume a killed/crashed run from its autosave.

    ``build`` must reconstruct the engine exactly as the original driver
    did — same SimConfig (with checkpointing enabled), same workload
    spawns — and return it without calling ``run()``. Returns
    ``(engine, stats)``; with ``finish=True`` the interrupted segment is
    run to its original bounds first.
    """
    ckpt = load_checkpoint(path)
    SimProcess.set_pid_counter(ckpt["pid_base"])
    engine = build()
    mgr = getattr(engine, "_ckpt", None)
    if mgr is None:
        raise CheckpointError(
            "the rebuilt engine has checkpointing disabled: set "
            "checkpoint_path/checkpoint_interval in its SimConfig")
    mgr.restore(ckpt)
    stats = engine.stats
    if finish:
        stats = mgr.finish(engine)
    return engine, stats
